// Hot-path allocation machinery for the Internet-scale census engine.
//
// Steady-state probing must not pay one heap allocation per target: at ten
// million targets even a handful of small allocations per admission
// dominates the scheduler loop and fragments the heap under the spill
// sink's working set. Two primitives cover the patterns the engine needs:
//
//   - BumpArena: a block-chained bump allocator for trivially-destructible
//     per-pass scratch (retry subsets, index arrays). Allocation is a
//     pointer bump; reset() recycles every block at once at a pass
//     boundary, keeping the largest block so a steady-state pass allocates
//     nothing new.
//   - BufferPool: a free-list recycler for byte buffers (probe packets,
//     batch scratch). acquire() hands back a previously released vector
//     with its capacity intact, so after warm-up the build-send-release
//     cycle touches the heap zero times per target. Hit/miss counters make
//     that claim testable instead of aspirational.
//
// Neither primitive is thread-safe; the engine keeps one per lane (the
// census's per-lane arenas) or one per single-threaded stage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace lfp::util {

/// Block-chained bump allocator for trivially-destructible scratch. The
/// arena never runs destructors: only trivially-destructible types may live
/// in it (enforced per call), which is exactly the per-pass scratch shape —
/// addresses, indices, masks.
class BumpArena {
  public:
    /// `block_bytes` is the granularity fresh blocks are requested in;
    /// oversized allocations get a dedicated block of their exact size.
    explicit BumpArena(std::size_t block_bytes = 1 << 16)
        : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

    BumpArena(const BumpArena&) = delete;
    BumpArena& operator=(const BumpArena&) = delete;

    /// Raw aligned allocation. Alignment must be a power of two.
    void* allocate(std::size_t bytes, std::size_t alignment = alignof(std::max_align_t)) {
        std::size_t offset = align_up(used_, alignment);
        if (current_ == nullptr || offset + bytes > current_->size) {
            grow(bytes + alignment);
            offset = align_up(used_, alignment);
        }
        used_ = offset + bytes;
        bytes_allocated_ += bytes;
        return current_->data.get() + offset;
    }

    /// Carves a default-initialized span of `count` Ts. T must be trivially
    /// destructible (the arena never runs destructors) and trivially
    /// copyable (reset() abandons the storage wholesale).
    template <typename T>
    [[nodiscard]] std::span<T> make_span(std::size_t count) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "BumpArena storage is reclaimed without destructors");
        static_assert(std::is_trivially_copyable_v<T>,
                      "BumpArena spans hold plain data only");
        if (count == 0) return {};
        T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
        for (std::size_t i = 0; i < count; ++i) new (data + i) T{};
        return {data, count};
    }

    /// Recycles every block at once (a pass boundary). The largest block is
    /// kept so a steady-state pass of the same shape allocates nothing; the
    /// rest are returned to the heap.
    void reset() noexcept {
        if (current_ == nullptr) return;
        // Find the largest block in the chain and make it the sole survivor.
        Block* largest = current_;
        for (Block* block = current_->next.get(); block != nullptr; block = block->next.get()) {
            if (block->size > largest->size) largest = block;
        }
        if (largest != current_) {
            // Detach `largest` from wherever it sits in the chain.
            Block* prev = current_;
            while (prev->next.get() != largest) prev = prev->next.get();
            std::unique_ptr<Block> keep = std::move(prev->next);
            prev->next = std::move(keep->next);
            keep->next = std::move(head_);
            head_ = std::move(keep);
        } else {
            std::unique_ptr<Block> keep = std::move(head_);
            head_ = std::move(keep);
        }
        head_->next.reset();
        current_ = head_.get();
        used_ = 0;
        bytes_allocated_ = 0;
        reserved_ = head_->size;  // every other block was just returned
        ++resets_;
    }

    /// Bytes handed out since the last reset (excludes alignment padding).
    [[nodiscard]] std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
    /// Bytes of backing storage currently owned (survives reset()).
    [[nodiscard]] std::size_t bytes_reserved() const noexcept { return reserved_; }
    [[nodiscard]] std::uint64_t resets() const noexcept { return resets_; }

  private:
    struct Block {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::unique_ptr<Block> next;
    };

    static constexpr std::size_t align_up(std::size_t value, std::size_t alignment) noexcept {
        return (value + alignment - 1) & ~(alignment - 1);
    }

    void grow(std::size_t at_least) {
        const std::size_t size = at_least > block_bytes_ ? at_least : block_bytes_;
        auto block = std::make_unique<Block>();
        block->data = std::make_unique<std::byte[]>(size);
        block->size = size;
        block->next = std::move(head_);
        head_ = std::move(block);
        current_ = head_.get();
        used_ = 0;
        reserved_ += size;
    }

    std::size_t block_bytes_;
    std::unique_ptr<Block> head_;   ///< chain of blocks; front is the active one
    Block* current_ = nullptr;
    std::size_t used_ = 0;          ///< bump offset within current_
    std::size_t bytes_allocated_ = 0;
    std::size_t reserved_ = 0;
    std::uint64_t resets_ = 0;
};

/// Free-list recycler for byte buffers: the probe engine's per-lane packet
/// scratch. acquire() prefers a previously released buffer (capacity
/// intact — a hit); only an empty pool touches the heap (a miss). After
/// warm-up every build-send-release cycle is all hits, which the
/// zero-allocation tests assert via these counters.
class BufferPool {
  public:
    using Buffer = std::vector<std::uint8_t>;

    [[nodiscard]] Buffer acquire() {
        if (free_.empty()) {
            ++misses_;
            return {};
        }
        ++hits_;
        Buffer buffer = std::move(free_.back());
        free_.pop_back();
        buffer.clear();  // keeps capacity
        return buffer;
    }

    void release(Buffer&& buffer) { free_.push_back(std::move(buffer)); }

    /// Pre-populates the free list so even the first acquisitions are hits.
    void prime(std::size_t buffers, std::size_t capacity_bytes) {
        free_.reserve(free_.size() + buffers);
        for (std::size_t i = 0; i < buffers; ++i) {
            Buffer buffer;
            buffer.reserve(capacity_bytes);
            free_.push_back(std::move(buffer));
        }
    }

    [[nodiscard]] std::size_t available() const noexcept { return free_.size(); }
    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  private:
    std::vector<Buffer> free_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace lfp::util
