#include "baselines/ittl_fingerprint.hpp"

namespace lfp::baselines {

std::optional<IttlTuple> ittl_tuple(const core::FeatureVector& features) {
    if (!features.complete()) return std::nullopt;
    return IttlTuple{features.ittl_udp, features.ittl_icmp, features.ittl_tcp};
}

void IttlClassifier::train(std::span<const core::Measurement> measurements) {
    for (const core::Measurement& measurement : measurements) {
        for (const core::TargetRecord& record : measurement.records) {
            if (!record.snmp_vendor) continue;
            auto tuple = ittl_tuple(record.features);
            if (!tuple) continue;
            ++tuples_[*tuple].vendors[*record.snmp_vendor];
        }
    }
}

std::optional<stack::Vendor> IttlClassifier::classify(
    const core::FeatureVector& features) const {
    auto tuple = ittl_tuple(features);
    if (!tuple) return std::nullopt;
    auto it = tuples_.find(*tuple);
    if (it == tuples_.end() || it->second.vendors.size() != 1) return std::nullopt;
    return it->second.vendors.begin()->first;
}

std::size_t IttlClassifier::unique_tuples() const {
    std::size_t count = 0;
    for (const auto& [tuple, stats] : tuples_) {
        if (stats.vendors.size() == 1) ++count;
    }
    return count;
}

std::size_t IttlClassifier::ambiguous_tuples() const {
    return tuples_.size() - unique_tuples();
}

}  // namespace lfp::baselines
