// SNMPv3-only baseline (Albakour et al. 2021, the paper's ground-truth
// source used standalone): vendor from the engine ID, nothing else. High
// accuracy, ~30% coverage — the bar LFP doubles.
#pragma once

#include <optional>

#include "probe/transport.hpp"
#include "snmp/snmpv3.hpp"
#include "stack/vendor.hpp"

namespace lfp::baselines {

struct Snmpv3Result {
    bool responded = false;
    std::optional<stack::Vendor> vendor;
    snmp::EngineId engine_id;
};

class Snmpv3OnlyFingerprinter {
  public:
    /// One discovery request; a single packet per target.
    [[nodiscard]] Snmpv3Result fingerprint(probe::ProbeTransport& transport,
                                           net::IPv4Address target);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  private:
    std::int32_t next_message_id_ = 0x1000;
    std::uint64_t packets_sent_ = 0;
};

}  // namespace lfp::baselines
