// Hershel baseline (§7.3.2): single-packet OS fingerprinting from SYN-ACK
// features. Requires an open TCP port; its database is server-OS oriented,
// so router stacks match poorly — the paper measures <1% vendor accuracy on
// the top three router vendors and frequent "Linux" verdicts for
// Linux-derived platforms like MikroTik.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "probe/transport.hpp"
#include "stack/vendor.hpp"

namespace lfp::baselines {

/// SYN-ACK observables Hershel scores.
struct SynAckObservation {
    std::uint16_t window = 0;
    std::uint8_t initial_ttl = 0;  ///< inferred {32,64,128,255}
    std::optional<std::uint16_t> mss;
    bool sack_permitted = false;
    bool timestamps = false;
};

struct HershelVerdict {
    std::string os_label;
    std::optional<stack::Vendor> vendor;  ///< vendor implied by the label, if any
    double score = 0.0;
    SynAckObservation observation;
};

class HershelClassifier {
  public:
    /// Default database: server-OS heavy, a token amount of network gear —
    /// mirroring the real tool's signature distribution.
    HershelClassifier();

    /// Sends one SYN to `port` and classifies the SYN-ACK. nullopt when the
    /// port is closed/filtered (no SYN-ACK — Hershel's coverage limit).
    [[nodiscard]] std::optional<HershelVerdict> fingerprint(probe::ProbeTransport& transport,
                                                            net::IPv4Address target,
                                                            std::uint16_t port = 22);

    /// Classifies an already-captured observation (unit-testable core).
    [[nodiscard]] HershelVerdict classify(const SynAckObservation& observation) const;

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  private:
    struct Entry {
        std::string os_label;
        std::optional<stack::Vendor> vendor;
        SynAckObservation features;
    };
    std::vector<Entry> entries_;
    std::uint64_t packets_sent_ = 0;
    std::uint16_t next_port_ = 52100;
};

}  // namespace lfp::baselines
