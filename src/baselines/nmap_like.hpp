// Nmap-style OS detection baseline (§7.3.1): a port scan followed by an OS
// probe battery matched against a fingerprint database whose router entries
// are sparse (the real tool ships ~160 Cisco and ~20 Juniper signatures
// among 6000+). Orders of magnitude more packets per inference than LFP —
// the cost LFP's Figure 18 comparison quantifies.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baselines/hershel.hpp"  // SynAckObservation
#include "probe/transport.hpp"
#include "stack/vendor.hpp"

namespace lfp::baselines {

struct NmapResult {
    bool responsive = false;               ///< any port answered
    std::optional<std::string> os_match;   ///< best database match
    std::optional<stack::Vendor> vendor;   ///< vendor implied by the match
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
};

class NmapLikeScanner {
  public:
    struct Config {
        /// Ports actually probed per target; counts are scaled to
        /// `reported_ports` to reflect the tool's top-1000 default.
        std::size_t scanned_ports = 100;
        std::size_t reported_ports = 1000;
        std::size_t os_probe_rounds = 3;  ///< retries when matching fails
    };

    explicit NmapLikeScanner() : NmapLikeScanner(Config{}) {}
    explicit NmapLikeScanner(Config config);

    [[nodiscard]] NmapResult scan(probe::ProbeTransport& transport, net::IPv4Address target);

    [[nodiscard]] std::uint64_t total_packets_sent() const noexcept { return total_sent_; }

  private:
    struct DbEntry {
        std::string os_label;
        std::optional<stack::Vendor> vendor;
        SynAckObservation syn_ack;
        /// RST iTTL on the closed-port probe (secondary discriminator).
        std::uint8_t closed_ittl = 0;
    };

    [[nodiscard]] std::optional<DbEntry> match(const SynAckObservation& open_obs,
                                               std::uint8_t closed_ittl) const;

    Config config_;
    std::vector<DbEntry> database_;
    std::uint16_t next_port_ = 61000;
    std::uint64_t total_sent_ = 0;
};

}  // namespace lfp::baselines
