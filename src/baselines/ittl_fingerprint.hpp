// TTL-tuple fingerprinting baseline (Vanaubel et al., related work §2):
// classifies routers by the inferred-initial-TTL triple alone. Coarse — the
// paper notes Huawei shares Cisco's tuple — but cheap; LFP subsumes it as
// three of its fifteen features.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <tuple>

#include "core/feature.hpp"
#include "core/pipeline.hpp"
#include "stack/vendor.hpp"

namespace lfp::baselines {

/// (UDP, ICMP, TCP) initial TTLs, mirroring the paper's table layout.
using IttlTuple = std::tuple<std::uint8_t, std::uint8_t, std::uint8_t>;

[[nodiscard]] std::optional<IttlTuple> ittl_tuple(const core::FeatureVector& features);

class IttlClassifier {
  public:
    /// Learns tuple → vendor from labeled records; tuples claimed by more
    /// than one vendor become ambiguous and classify as nullopt.
    void train(std::span<const core::Measurement> measurements);

    [[nodiscard]] std::optional<stack::Vendor> classify(
        const core::FeatureVector& features) const;

    /// Number of unambiguous tuples learned.
    [[nodiscard]] std::size_t unique_tuples() const;
    /// Number of tuples shared by multiple vendors.
    [[nodiscard]] std::size_t ambiguous_tuples() const;

  private:
    struct TupleStats {
        std::map<stack::Vendor, std::size_t> vendors;
    };
    std::map<IttlTuple, TupleStats> tuples_;
};

}  // namespace lfp::baselines
