#include "baselines/nmap_like.hpp"

#include "core/feature.hpp"
#include "stack/simulated_router.hpp"

namespace lfp::baselines {

namespace {

SynAckObservation obs(std::uint16_t window, std::uint8_t ttl, std::uint16_t mss, bool sack,
                      bool ts) {
    SynAckObservation o;
    o.window = window;
    o.initial_ttl = ttl;
    o.mss = mss;
    o.sack_permitted = sack;
    o.timestamps = ts;
    return o;
}

}  // namespace

NmapLikeScanner::NmapLikeScanner(Config config) : config_(config) {
    // Fingerprint database: biased exactly the way the real one is — rich
    // for Cisco IOS lineages and Juniper, thin or absent elsewhere; router
    // stacks built on Linux resolve to generic Linux entries.
    database_ = {
        {"Cisco IOS 12.x", stack::Vendor::cisco, obs(4128, 255, 536, false, false), 64},
        {"Cisco IOS 15.x", stack::Vendor::cisco, obs(4096, 255, 536, false, false), 64},
        {"Cisco IOS-XE", stack::Vendor::cisco, obs(4096, 255, 1460, false, false), 255},
        {"Cisco IOS-XR", stack::Vendor::cisco, obs(16384, 255, 1460, false, false), 255},
        {"Juniper JunOS", stack::Vendor::juniper, obs(16384, 64, 1460, false, true), 64},
        {"Juniper JunOS EX", stack::Vendor::juniper, obs(16384, 64, 1460, true, true), 64},
        {"Huawei VRP 8", stack::Vendor::huawei, obs(8192, 64, 1460, false, false), 64},
        {"H3C Comware", stack::Vendor::h3c, obs(8192, 255, 536, false, false), 255},
        {"MikroTik RouterOS 5", stack::Vendor::mikrotik, obs(14600, 64, 536, true, false), 255},
        {"Linux 2.6", std::nullopt, obs(5840, 64, 1460, true, true), 64},
        {"Linux 3.10", std::nullopt, obs(14600, 64, 1460, true, true), 64},
        {"Linux 4.15", std::nullopt, obs(29200, 64, 1460, true, true), 64},
        {"Linux 5.4", std::nullopt, obs(64240, 64, 1460, true, true), 64},
        {"Windows Server", std::nullopt, obs(8192, 128, 1460, true, false), 128},
        {"FreeBSD", std::nullopt, obs(65535, 64, 1460, true, true), 64},
    };
}

std::optional<NmapLikeScanner::DbEntry> NmapLikeScanner::match(
    const SynAckObservation& open_obs, std::uint8_t closed_ittl) const {
    const DbEntry* best = nullptr;
    int best_score = 0;
    for (const DbEntry& entry : database_) {
        int score = 0;
        if (entry.syn_ack.window == open_obs.window) score += 4;
        if (entry.syn_ack.mss == open_obs.mss) score += 2;
        if (entry.syn_ack.sack_permitted == open_obs.sack_permitted) score += 1;
        if (entry.syn_ack.timestamps == open_obs.timestamps) score += 1;
        if (entry.syn_ack.initial_ttl == open_obs.initial_ttl) score += 2;
        if (closed_ittl != 0 && entry.closed_ittl == closed_ittl) score += 1;
        if (score > best_score) {
            best_score = score;
            best = &entry;
        }
    }
    // Nmap requires a confident aggregate match before reporting.
    if (best == nullptr || best_score < 8) return std::nullopt;
    return *best;
}

NmapResult NmapLikeScanner::scan(probe::ProbeTransport& transport, net::IPv4Address target) {
    NmapResult result;
    const double scale_factor = static_cast<double>(config_.reported_ports) /
                                static_cast<double>(config_.scanned_ports);

    std::optional<SynAckObservation> open_obs;
    std::uint64_t raw_sent = 0;
    std::uint64_t raw_received = 0;

    // --- Port scan: SYN sweep with one retry for silent ports. -------------
    for (std::size_t i = 0; i < config_.scanned_ports; ++i) {
        // Hit the management port early (it is in every "top ports" list);
        // remaining probes sweep high closed ports.
        const std::uint16_t port =
            i == 0 ? stack::kMgmtPort : static_cast<std::uint16_t>(20000 + i);
        for (int attempt = 0; attempt < 2; ++attempt) {
            net::TcpSegment syn;
            syn.source_port = next_port_++;
            if (next_port_ < 61000) next_port_ = 61000;
            syn.destination_port = port;
            syn.sequence = 0x1A2B3C;
            syn.flags.syn = true;
            syn.window = 64240;
            syn.options.push_back({net::TcpOptionKind::mss, {0x05, 0xB4}});

            net::IpSendOptions ip;
            ip.source = transport.vantage_address();
            ip.destination = target;
            ip.identification = static_cast<std::uint16_t>(0x6000 + i);

            ++raw_sent;
            auto raw = transport.transact(net::make_tcp_packet(ip, syn));
            if (!raw) continue;  // silence → retry once
            ++raw_received;
            result.responsive = true;
            auto parsed = net::parse_packet(*raw);
            if (parsed) {
                const auto* tcp = parsed.value().tcp();
                if (tcp != nullptr && tcp->flags.syn && tcp->flags.ack && !open_obs) {
                    SynAckObservation o;
                    o.window = tcp->window;
                    o.initial_ttl = core::infer_initial_ttl(parsed.value().ip.ttl);
                    o.mss = tcp->mss();
                    for (const auto& option : tcp->options) {
                        if (option.kind == net::TcpOptionKind::sack_permitted) {
                            o.sack_permitted = true;
                        }
                        if (option.kind == net::TcpOptionKind::timestamps) o.timestamps = true;
                    }
                    open_obs = o;
                }
            }
            break;  // answered (SYN-ACK or RST): no retry
        }
    }

    result.packets_sent = static_cast<std::uint64_t>(
        static_cast<double>(raw_sent) * scale_factor);
    result.packets_received = static_cast<std::uint64_t>(
        static_cast<double>(raw_received) * scale_factor);

    // --- OS detection: needs an open port (nmap's documented weakness on
    // tightly secured routers). Probe battery of 16, retried when the match
    // is not confident.
    if (open_obs) {
        std::uint8_t closed_ittl = 0;
        for (std::size_t round = 0; round < config_.os_probe_rounds; ++round) {
            // 16-probe battery: we send a representative subset as real
            // packets (closed-port RST elicitation + ICMP echo) and account
            // for the full battery in the packet counts.
            constexpr std::uint64_t kBatterySize = 16;
            result.packets_sent += kBatterySize;

            net::TcpSegment probe;
            probe.source_port = next_port_++;
            probe.destination_port = stack::kProbePort;
            probe.sequence = 0x777;
            probe.acknowledgment = 0x1;
            probe.flags.ack = true;
            probe.window = 1024;
            net::IpSendOptions ip;
            ip.source = transport.vantage_address();
            ip.destination = target;
            ip.identification = static_cast<std::uint16_t>(0x7100 + round);
            auto raw = transport.transact(net::make_tcp_packet(ip, probe));
            if (raw) {
                ++result.packets_received;
                auto parsed = net::parse_packet(*raw);
                if (parsed) closed_ittl = core::infer_initial_ttl(parsed.value().ip.ttl);
            }

            auto verdict = match(*open_obs, closed_ittl);
            if (verdict) {
                result.os_match = verdict->os_label;
                result.vendor = verdict->vendor;
                break;
            }
        }
    }

    total_sent_ += result.packets_sent;
    return result;
}

}  // namespace lfp::baselines
