#include "baselines/snmpv3_only.hpp"

#include "net/packet_builder.hpp"

namespace lfp::baselines {

Snmpv3Result Snmpv3OnlyFingerprinter::fingerprint(probe::ProbeTransport& transport,
                                                  net::IPv4Address target) {
    Snmpv3Result result;

    snmp::DiscoveryRequest request;
    request.message_id = next_message_id_++;

    net::UdpDatagram datagram;
    datagram.source_port = 42162;
    datagram.destination_port = snmp::kSnmpPort;
    datagram.payload = request.serialize();

    net::IpSendOptions ip;
    ip.source = transport.vantage_address();
    ip.destination = target;
    ip.identification = static_cast<std::uint16_t>(next_message_id_ & 0xFFFF);

    ++packets_sent_;
    auto raw = transport.transact(net::make_udp_packet(ip, datagram));
    if (!raw) return result;
    auto parsed = net::parse_packet(*raw);
    if (!parsed) return result;
    const auto* udp = parsed.value().udp();
    if (udp == nullptr) return result;
    auto response = snmp::DiscoveryResponse::parse(udp->payload);
    if (!response) return result;

    result.responded = true;
    result.engine_id = response.value().engine_id;
    const stack::Vendor vendor =
        stack::vendor_from_enterprise(result.engine_id.enterprise);
    if (vendor != stack::Vendor::unknown) result.vendor = vendor;
    return result;
}

}  // namespace lfp::baselines
