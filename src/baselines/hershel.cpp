#include "baselines/hershel.hpp"

#include "core/feature.hpp"

namespace lfp::baselines {

namespace {

SynAckObservation make_obs(std::uint16_t window, std::uint8_t ttl,
                           std::optional<std::uint16_t> mss, bool sack, bool ts) {
    SynAckObservation obs;
    obs.window = window;
    obs.initial_ttl = ttl;
    obs.mss = mss;
    obs.sack_permitted = sack;
    obs.timestamps = ts;
    return obs;
}

}  // namespace

HershelClassifier::HershelClassifier() {
    // A condensed rendition of Hershel's 400-odd signature database: the
    // mass is server operating systems; network equipment is a thin tail.
    entries_ = {
        {"Linux 2.6", std::nullopt, make_obs(5840, 64, 1460, true, true)},
        {"Linux 3.x", std::nullopt, make_obs(14600, 64, 1460, true, true)},
        {"Linux 4.x", std::nullopt, make_obs(29200, 64, 1460, true, true)},
        {"Linux 5.x", std::nullopt, make_obs(64240, 64, 1460, true, true)},
        {"Windows Server 2008", std::nullopt, make_obs(8192, 128, 1460, true, false)},
        {"Windows Server 2016", std::nullopt, make_obs(65535, 128, 1460, true, true)},
        {"FreeBSD 11", std::nullopt, make_obs(65535, 64, 1460, true, true)},
        {"Solaris 10", std::nullopt, make_obs(49640, 255, 1460, false, true)},
        {"Embedded/VxWorks", std::nullopt, make_obs(8192, 64, 536, false, false)},
        // Token network-gear entries (the real database has very few).
        {"Cisco IOS 12", stack::Vendor::cisco, make_obs(4128, 255, 536, false, false)},
        {"Catalyst OS", stack::Vendor::cisco, make_obs(4128, 64, 536, false, false)},
    };
}

HershelVerdict HershelClassifier::classify(const SynAckObservation& observation) const {
    // Hershel proper runs a probabilistic model over delayed retransmission
    // timing; with a single observation the dominant term is feature
    // agreement, which we score directly.
    const Entry* best = nullptr;
    double best_score = -1.0;
    for (const Entry& entry : entries_) {
        double score = 0.0;
        if (entry.features.window == observation.window) score += 4.0;
        if (entry.features.initial_ttl == observation.initial_ttl) score += 2.0;
        if (entry.features.mss == observation.mss) score += 1.5;
        if (entry.features.sack_permitted == observation.sack_permitted) score += 1.0;
        if (entry.features.timestamps == observation.timestamps) score += 1.0;
        if (score > best_score) {
            best_score = score;
            best = &entry;
        }
    }
    HershelVerdict verdict;
    verdict.observation = observation;
    if (best != nullptr) {
        verdict.os_label = best->os_label;
        verdict.vendor = best->vendor;
        verdict.score = best_score / 9.5;
    }
    return verdict;
}

std::optional<HershelVerdict> HershelClassifier::fingerprint(probe::ProbeTransport& transport,
                                                             net::IPv4Address target,
                                                             std::uint16_t port) {
    net::TcpSegment syn;
    syn.source_port = next_port_++;
    if (next_port_ < 52100) next_port_ = 52100;
    syn.destination_port = port;
    syn.sequence = 0x5EED;
    syn.flags.syn = true;
    syn.window = 65535;
    syn.options.push_back({net::TcpOptionKind::mss, {0x05, 0xB4}});  // 1460

    net::IpSendOptions ip;
    ip.source = transport.vantage_address();
    ip.destination = target;
    ip.ttl = 64;
    ip.identification = 0x4E55;

    ++packets_sent_;
    auto raw = transport.transact(net::make_tcp_packet(ip, syn));
    if (!raw) return std::nullopt;
    auto parsed = net::parse_packet(*raw);
    if (!parsed) return std::nullopt;
    const auto* tcp = parsed.value().tcp();
    if (tcp == nullptr || !tcp->flags.syn || !tcp->flags.ack) return std::nullopt;

    SynAckObservation obs;
    obs.window = tcp->window;
    obs.initial_ttl = core::infer_initial_ttl(parsed.value().ip.ttl);
    obs.mss = tcp->mss();
    for (const auto& option : tcp->options) {
        if (option.kind == net::TcpOptionKind::sack_permitted) obs.sack_permitted = true;
        if (option.kind == net::TcpOptionKind::timestamps) obs.timestamps = true;
    }
    return classify(obs);
}

}  // namespace lfp::baselines
