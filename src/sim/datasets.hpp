// Dataset synthesis: RIPE-Atlas-like traceroute snapshots (with interface
// churn across snapshots) and an ITDK-like router-level dataset with alias
// sets — the two complementary target lists of the paper (Table 2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/topology.hpp"
#include "sim/traceroute.hpp"

namespace lfp::sim {

struct TracerouteDataset {
    std::string name;
    std::string date;
    std::vector<Traceroute> traces;

    /// Unique routable intermediate hop addresses (the dataset's router IPs).
    [[nodiscard]] std::vector<net::IPv4Address> router_ips() const;

    /// Number of distinct ASes the router IPs map to.
    [[nodiscard]] std::size_t as_count(const Topology& topology) const;
};

struct AliasSet {
    std::size_t router_index = 0;  ///< ground-truth backing router
    std::vector<net::IPv4Address> addresses;
};

struct ItdkDataset {
    std::string name;
    std::string date;
    std::vector<AliasSet> alias_sets;  ///< non-singleton alias sets

    [[nodiscard]] std::vector<net::IPv4Address> router_ips() const;
    [[nodiscard]] std::size_t as_count(const Topology& topology) const;
};

struct DatasetConfig {
    std::uint64_t seed = 99;
    std::size_t traces_per_snapshot = 40000;
    std::size_t snapshot_count = 5;
    /// Fraction of source/destination pairs replaced between snapshots
    /// (drives the ~88% pairwise router-IP overlap the paper reports).
    double pair_churn = 0.25;
    /// Destination-AS pool size (bounds routing-table computations).
    std::size_t destination_pool = 400;
    /// Fraction of ASes hosting measurement probes (RIPE vantage points
    /// live in a minority of networks; ASes outside the probe and
    /// destination pools are observed only when they provide transit).
    double source_as_fraction = 0.35;
    /// Fraction of ASes included in the ITDK-like collection run.
    double itdk_as_fraction = 0.55;
};

class DatasetBuilder {
  public:
    DatasetBuilder(const Topology& topology, DatasetConfig config = {});

    /// The five RIPE-like snapshots, in chronological order.
    [[nodiscard]] std::vector<TracerouteDataset> ripe_snapshots();

    /// The ITDK-like router-level dataset: routers in the sampled AS set
    /// that answer at least one probe protocol, with their alias sets
    /// (singletons excluded, as in MIDAR-based ITDK releases).
    [[nodiscard]] ItdkDataset itdk() const;

  private:
    const Topology* topology_;
    DatasetConfig config_;
};

}  // namespace lfp::sim
