// Traceroute synthesis: RIPE-Atlas-like forwarding paths through the
// simulated topology. Paths follow valley-free AS routes; within each AS a
// small chain of that AS's routers is traversed.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/internet.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace lfp::sim {

struct Traceroute {
    std::uint32_t source_asn = 0;
    std::uint32_t destination_asn = 0;
    net::IPv4Address source;
    net::IPv4Address destination;
    /// Intermediate router interface IPs, in path order. The targeted host
    /// itself is never included (paper §3.2 drops the last responsive hop
    /// when it equals the target).
    std::vector<net::IPv4Address> hops;
};

class TracerouteSynthesizer {
  public:
    TracerouteSynthesizer(const Topology& topology, std::uint64_t seed)
        : topology_(&topology), rng_(seed), seed_(seed) {}

    /// One traceroute from a host in `source_asn` to a host in
    /// `destination_asn`, or nullopt if no valley-free route exists.
    /// Each call draws a fresh flow (new intra-AS router choices).
    std::optional<Traceroute> trace(std::uint32_t source_asn, std::uint32_t destination_asn);

    /// Deterministic variant: the same (source, destination, flow_id)
    /// triple always yields the identical trace — modelling the stable
    /// per-flow forwarding RIPE anchors observe across snapshots.
    std::optional<Traceroute> trace(std::uint32_t source_asn, std::uint32_t destination_asn,
                                    std::uint64_t flow_id);

    /// Fraction of hops that are stale (phantom) interface addresses and
    /// private addresses — traceroute noise the analyses must filter.
    void set_noise(double stale_fraction, double private_fraction) {
        stale_fraction_ = stale_fraction;
        private_fraction_ = private_fraction;
    }

  private:
    const AsGraph::RoutingTable& routing_table(std::uint32_t destination_asn);
    net::IPv4Address host_address(std::uint32_t asn, util::Rng& rng) const;
    void append_as_hops(Traceroute& out, std::uint32_t asn, std::size_t count,
                        util::Rng& rng) const;

    const Topology* topology_;
    util::Rng rng_;
    std::uint64_t seed_;
    std::uint64_t next_flow_ = 0;
    std::unordered_map<std::uint32_t, AsGraph::RoutingTable> routing_cache_;
    double stale_fraction_ = 0.05;
    double private_fraction_ = 0.02;
};

}  // namespace lfp::sim
