// AS-level graph with Gao-Rexford business relationships and valley-free
// path computation — the substrate for traceroute synthesis and for the
// §6.3 informed-routing case study (standing in for the CAIDA AS
// relationship dataset).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace lfp::sim {

enum class AsTier : std::uint8_t {
    tier1,    ///< transit-free, fully meshed peers
    transit,  ///< regional/national transit providers
    stub,     ///< edge networks
};

struct AsNode {
    std::uint32_t asn = 0;
    AsTier tier = AsTier::stub;
    std::vector<std::uint32_t> providers;
    std::vector<std::uint32_t> customers;
    std::vector<std::uint32_t> peers;
};

/// A valley-free AS path from a source to a destination (inclusive).
using AsPath = std::vector<std::uint32_t>;

class AsGraph {
  public:
    std::uint32_t add_as(AsTier tier);

    /// Records a provider→customer relationship.
    void add_provider_customer(std::uint32_t provider, std::uint32_t customer);
    void add_peering(std::uint32_t a, std::uint32_t b);

    [[nodiscard]] const AsNode& node(std::uint32_t asn) const;
    [[nodiscard]] bool contains(std::uint32_t asn) const;
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
    [[nodiscard]] const std::vector<AsNode>& nodes() const noexcept { return nodes_; }

    /// Per-destination routing state: every AS's best valley-free path to
    /// `destination`, following Gao-Rexford preferences
    /// (customer > peer > provider route, then shortest).
    class RoutingTable {
      public:
        /// The best path from `source` to the table's destination, or
        /// nullopt if unreachable.
        [[nodiscard]] std::optional<AsPath> path_from(std::uint32_t source) const;

        /// True if any valley-free route exists from `source`.
        [[nodiscard]] bool reachable_from(std::uint32_t source) const;

        /// Best path from `source` that avoids every AS in `excluded`
        /// (destination excepted). Used by the informed-routing policy to
        /// find alternatives around untrusted transit networks. Computed by
        /// re-running route propagation with the excluded ASes removed.
        [[nodiscard]] std::optional<AsPath> path_avoiding(
            std::uint32_t source, const std::vector<std::uint32_t>& excluded) const;

        [[nodiscard]] std::uint32_t destination() const noexcept { return destination_; }

      private:
        friend class AsGraph;
        const AsGraph* graph_ = nullptr;
        std::uint32_t destination_ = 0;
        std::vector<std::uint32_t> excluded_;  // applied during computation

        // Per-AS best-route records, indexed like nodes_.
        struct Route {
            int hops = -1;                       ///< -1 = unreachable
            std::uint8_t kind = 3;               ///< 0 customer, 1 peer, 2 provider, 3 none
            std::uint32_t next_hop = 0;
        };
        std::vector<Route> routes_;

        void compute();
        [[nodiscard]] bool is_excluded(std::uint32_t asn) const;
    };

    /// Builds the routing table toward `destination`.
    [[nodiscard]] RoutingTable routes_to(std::uint32_t destination) const;

    /// Routing table toward `destination` with some ASes removed from the
    /// topology (they neither originate nor transit).
    [[nodiscard]] RoutingTable routes_to_avoiding(
        std::uint32_t destination, std::vector<std::uint32_t> excluded) const;

  private:
    [[nodiscard]] std::size_t index_of(std::uint32_t asn) const;

    std::vector<AsNode> nodes_;
    std::unordered_map<std::uint32_t, std::size_t> index_;
    std::uint32_t next_asn_ = 100;
};

}  // namespace lfp::sim
