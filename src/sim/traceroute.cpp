#include "sim/traceroute.hpp"

namespace lfp::sim {

const AsGraph::RoutingTable& TracerouteSynthesizer::routing_table(
    std::uint32_t destination_asn) {
    auto it = routing_cache_.find(destination_asn);
    if (it == routing_cache_.end()) {
        it = routing_cache_
                 .emplace(destination_asn, topology_->graph().routes_to(destination_asn))
                 .first;
    }
    return it->second;
}

net::IPv4Address TracerouteSynthesizer::host_address(std::uint32_t asn, util::Rng& rng) const {
    // Synthetic end-host addresses live outside the router interface space;
    // analyses resolve endpoints by ASN, not by these bytes.
    const std::uint32_t draw = static_cast<std::uint32_t>(rng.next());
    return net::IPv4Address::from_octets(223, static_cast<std::uint8_t>(asn % 200),
                                         static_cast<std::uint8_t>((draw >> 8) & 0xFF),
                                         static_cast<std::uint8_t>(draw & 0xFF));
}

void TracerouteSynthesizer::append_as_hops(Traceroute& out, std::uint32_t asn, std::size_t count,
                                           util::Rng& rng) const {
    const auto& routers = topology_->routers_in_as(asn);
    if (routers.empty()) return;
    for (std::size_t i = 0; i < count; ++i) {
        // Noise: occasionally a hop shows a stale or private address.
        if (!topology_->phantom_addresses().empty() && rng.chance(stale_fraction_)) {
            const auto& phantoms = topology_->phantom_addresses();
            out.hops.push_back(phantoms[rng.below(phantoms.size())]);
            continue;
        }
        if (rng.chance(private_fraction_)) {
            out.hops.push_back(net::IPv4Address::from_octets(
                10, static_cast<std::uint8_t>(rng.below(256)),
                static_cast<std::uint8_t>(rng.below(256)), 1));
            continue;
        }
        const std::size_t router_index = routers[rng.below(routers.size())];
        const auto& interfaces = topology_->router(router_index).interfaces();
        // Traceroute replies come from the transit-facing (ingress)
        // interfaces; loopbacks and lateral links stay invisible. This keeps
        // the RIPE-like and ITDK-like address sets complementary (paper:
        // ≤26% overlap).
        const std::size_t visible = std::min<std::size_t>(interfaces.size(), 2);
        out.hops.push_back(interfaces[rng.below(visible)]);
    }
}

std::optional<Traceroute> TracerouteSynthesizer::trace(std::uint32_t source_asn,
                                                       std::uint32_t destination_asn) {
    return trace(source_asn, destination_asn, next_flow_++);
}

std::optional<Traceroute> TracerouteSynthesizer::trace(std::uint32_t source_asn,
                                                       std::uint32_t destination_asn,
                                                       std::uint64_t flow_id) {
    const auto& table = routing_table(destination_asn);
    auto as_path = table.path_from(source_asn);
    if (!as_path) return std::nullopt;

    // Per-flow deterministic stream: same (src, dst, flow) → same trace.
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(source_asn) << 40) ^
                  (static_cast<std::uint64_t>(destination_asn) << 16) ^
                  (flow_id * 0x9E3779B97F4A7C15ULL));

    Traceroute out;
    out.source_asn = source_asn;
    out.destination_asn = destination_asn;
    out.source = host_address(source_asn, rng);
    out.destination = host_address(destination_asn, rng);

    for (std::size_t i = 0; i < as_path->size(); ++i) {
        const std::uint32_t asn = (*as_path)[i];
        const AsTier tier = topology_->graph().node(asn).tier;
        std::size_t hops_here = 1;
        if (tier == AsTier::tier1) {
            hops_here = 1 + rng.below(3);  // backbone chains are longer
        } else if (tier == AsTier::transit) {
            hops_here = 1 + rng.below(2);
        }
        // Source AS: the first-hop gateway is usually not visible as a
        // routable core interface; skip it half the time.
        if (i == 0 && rng.chance(0.5)) continue;
        append_as_hops(out, asn, hops_here, rng);
    }
    return out;
}

}  // namespace lfp::sim
