#include "sim/internet.hpp"

#include <algorithm>

#include "net/packet_builder.hpp"

namespace lfp::sim {

namespace {

/// FNV-1a over the packet bytes, finished with a splitmix64 avalanche. Cheap,
/// and packets differ in IPID/ports/checksum anyway, so one 64-bit state is
/// plenty to decorrelate loss decisions between probes.
std::uint64_t mix_packet(std::uint64_t seed, std::span<const std::uint8_t> packet,
                         std::uint64_t salt) noexcept {
    std::uint64_t hash = 0xCBF29CE484222325ULL ^ seed;
    for (std::uint8_t byte : packet) {
        hash ^= byte;
        hash *= 0x100000001B3ULL;
    }
    hash ^= salt * 0x9E3779B97F4A7C15ULL;
    hash ^= hash >> 30;
    hash *= 0xBF58476D1CE4E5B9ULL;
    hash ^= hash >> 27;
    hash *= 0x94D049BB133111EBULL;
    hash ^= hash >> 31;
    return hash;
}

}  // namespace

bool Internet::take_icmp_token() {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(bucket_mutex_);
    const double elapsed =
        std::chrono::duration<double>(now - bucket_refill_at_).count();
    if (elapsed > 0) {
        bucket_tokens_ = std::min(config_.icmp_rate_limit_burst,
                                  bucket_tokens_ + elapsed * config_.icmp_rate_limit_per_sec);
        bucket_refill_at_ = now;
    }
    if (bucket_tokens_ < 1.0) return false;
    bucket_tokens_ -= 1.0;
    return true;
}

bool Internet::lost_in_transit(std::span<const std::uint8_t> packet,
                               std::uint64_t direction) const noexcept {
    if (config_.loss_rate <= 0) return false;
    const std::uint64_t hash = mix_packet(config_.seed, packet, direction);
    const double draw = static_cast<double>(hash >> 11) * 0x1.0p-53;
    return draw < config_.loss_rate;
}

std::vector<std::optional<net::Bytes>> Internet::transact_batch(
    std::span<const net::Bytes> probes) {
    std::vector<std::optional<net::Bytes>> responses;
    responses.reserve(probes.size());
    for (const net::Bytes& probe : probes) {
        responses.push_back(transact(probe));
    }
    return responses;
}

std::optional<net::Bytes> Internet::transact(std::span<const std::uint8_t> probe) {
    sent_.fetch_add(1, std::memory_order_relaxed);
    auto destination = net::peek_destination(probe);
    if (!destination) return std::nullopt;

    const std::size_t index = topology_->find_by_interface(destination.value());
    if (index == Topology::npos) return std::nullopt;  // unassigned / stale address

    // Both loss decisions hash the *request* bytes (salted by direction):
    // request uniqueness is what makes the decision per-probe. Note the
    // response-direction check must stay *after* handle_packet — the router
    // advances its stateful counters for every packet it answers, even
    // answers the wire then eats.
    if (lost_in_transit(probe, 0)) {
        lost_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;  // probe lost in transit
    }

    const int distance = topology_->distance_of(index);
    auto ttl = net::peek_ttl(probe);
    if (!ttl || ttl.value() <= distance) return std::nullopt;  // expired en route

    // Deliver with decayed TTL (routers do not inspect it, but realism is
    // cheap here and keeps the packets honest end to end).
    net::Bytes on_wire(probe.begin(), probe.end());
    net::rewrite_ttl(on_wire, static_cast<std::uint8_t>(ttl.value() - distance));

    auto response = topology_->router(index).handle_packet(on_wire);
    if (!response) return std::nullopt;

    // Path ICMP rate limiting: the router answered (its counters advanced —
    // same as the loss path), but the path's ICMP budget is spent, so the
    // ICMP-protocol answer (echo reply, or the ICMP error a UDP probe earns)
    // is swallowed and a source-quench advisory quoting the probe travels
    // back instead. TCP RSTs and SNMP/UDP answers are not ICMP and pass.
    // The quench replaces the response *in place* and rides the normal
    // return path below — the same loss draw, TTL decay, and returned_
    // accounting the answer it displaced would have seen (back-off signals
    // are packets, not oracles: a lossy path loses them too).
    if (config_.icmp_rate_limit_per_sec > 0) {
        auto header = net::Ipv4Header::parse(
            std::span<const std::uint8_t>(response->data(), response->size()));
        if (header && header.value().protocol == net::Protocol::icmp && !take_icmp_token()) {
            rate_limited_.fetch_add(1, std::memory_order_relaxed);
            net::IpSendOptions quench_ip;
            quench_ip.source = header.value().source;
            quench_ip.destination = header.value().destination;
            *response = net::make_icmp_error(quench_ip, net::IcmpType::source_quench, 0,
                                             on_wire, net::Ipv4Header::kSize + 8);
        }
    }

    if (lost_in_transit(probe, 1)) {
        lost_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;  // response lost in transit
    }

    auto response_ttl = net::peek_ttl(*response);
    if (!response_ttl || response_ttl.value() <= distance) return std::nullopt;
    net::rewrite_ttl(*response, static_cast<std::uint8_t>(response_ttl.value() - distance));
    returned_.fetch_add(1, std::memory_order_relaxed);
    return response;
}

}  // namespace lfp::sim
