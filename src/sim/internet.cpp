#include "sim/internet.hpp"

namespace lfp::sim {

std::vector<std::optional<net::Bytes>> Internet::transact_batch(
    std::span<const net::Bytes> probes) {
    std::vector<std::optional<net::Bytes>> responses;
    responses.reserve(probes.size());
    for (const net::Bytes& probe : probes) {
        responses.push_back(transact(probe));
    }
    return responses;
}

std::optional<net::Bytes> Internet::transact(std::span<const std::uint8_t> probe) {
    ++sent_;
    auto destination = net::peek_destination(probe);
    if (!destination) return std::nullopt;

    const std::size_t index = topology_->find_by_interface(destination.value());
    if (index == Topology::npos) return std::nullopt;  // unassigned / stale address

    if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
        ++lost_;
        return std::nullopt;  // probe lost in transit
    }

    const int distance = topology_->distance_of(index);
    auto ttl = net::peek_ttl(probe);
    if (!ttl || ttl.value() <= distance) return std::nullopt;  // expired en route

    // Deliver with decayed TTL (routers do not inspect it, but realism is
    // cheap here and keeps the packets honest end to end).
    net::Bytes on_wire(probe.begin(), probe.end());
    net::rewrite_ttl(on_wire, static_cast<std::uint8_t>(ttl.value() - distance));

    auto response = topology_->router(index).handle_packet(on_wire);
    if (!response) return std::nullopt;

    if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
        ++lost_;
        return std::nullopt;  // response lost in transit
    }

    auto response_ttl = net::peek_ttl(*response);
    if (!response_ttl || response_ttl.value() <= distance) return std::nullopt;
    net::rewrite_ttl(*response, static_cast<std::uint8_t>(response_ttl.value() - distance));
    ++returned_;
    return response;
}

}  // namespace lfp::sim
