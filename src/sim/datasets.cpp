#include "sim/datasets.hpp"

#include <algorithm>
#include <array>

namespace lfp::sim {

namespace {

std::vector<net::IPv4Address> unique_routable(const std::vector<Traceroute>& traces) {
    std::unordered_set<net::IPv4Address> seen;
    for (const auto& trace : traces) {
        for (net::IPv4Address hop : trace.hops) {
            if (hop.is_routable()) seen.insert(hop);
        }
    }
    std::vector<net::IPv4Address> out(seen.begin(), seen.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t count_ases(const Topology& topology, const std::vector<net::IPv4Address>& ips) {
    std::unordered_set<std::uint32_t> ases;
    for (net::IPv4Address ip : ips) {
        const std::size_t index = topology.find_by_interface(ip);
        if (index != Topology::npos) ases.insert(topology.asn_of(index));
    }
    return ases.size();
}

}  // namespace

std::vector<net::IPv4Address> TracerouteDataset::router_ips() const {
    return unique_routable(traces);
}

std::size_t TracerouteDataset::as_count(const Topology& topology) const {
    return count_ases(topology, router_ips());
}

std::vector<net::IPv4Address> ItdkDataset::router_ips() const {
    std::vector<net::IPv4Address> out;
    for (const auto& set : alias_sets) {
        out.insert(out.end(), set.addresses.begin(), set.addresses.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::size_t ItdkDataset::as_count(const Topology& topology) const {
    return count_ases(topology, router_ips());
}

DatasetBuilder::DatasetBuilder(const Topology& topology, DatasetConfig config)
    : topology_(&topology), config_(config) {}

std::vector<TracerouteDataset> DatasetBuilder::ripe_snapshots() {
    util::Rng rng(config_.seed);
    TracerouteSynthesizer synthesizer(*topology_, config_.seed ^ 0xA11A5);

    // Vantage points and destinations: RIPE probes live mostly in stub and
    // transit networks; destinations are drawn from a bounded pool so the
    // per-destination routing tables get reused.
    std::vector<std::uint32_t> all_asns;
    all_asns.reserve(topology_->graph().size());
    for (const AsNode& node : topology_->graph().nodes()) all_asns.push_back(node.asn);

    // Probe hosts live in a minority of networks.
    std::vector<std::uint32_t> source_pool;
    for (std::uint32_t asn : all_asns) {
        if (rng.chance(config_.source_as_fraction)) source_pool.push_back(asn);
    }
    if (source_pool.empty()) source_pool = all_asns;

    std::vector<std::uint32_t> destination_pool;
    for (std::size_t i = 0; i < config_.destination_pool; ++i) {
        destination_pool.push_back(all_asns[rng.below(all_asns.size())]);
    }

    struct Pair {
        std::uint32_t src;
        std::uint32_t dst;
        std::uint64_t flow;  ///< stable per pair → stable trace across snapshots
    };
    std::uint64_t next_flow = 1;
    std::vector<Pair> pairs(config_.traces_per_snapshot);
    auto fresh_pair = [&](Pair& p) {
        p.src = source_pool[rng.below(source_pool.size())];
        p.dst = destination_pool[rng.below(destination_pool.size())];
        p.flow = next_flow++;
    };
    for (auto& p : pairs) fresh_pair(p);

    static constexpr std::array<const char*, 5> kDates{
        "2022-01-24", "2022-02-24", "2022-06-09", "2022-07-04", "2022-11-07"};

    std::vector<TracerouteDataset> snapshots;
    for (std::size_t s = 0; s < config_.snapshot_count; ++s) {
        if (s != 0) {
            // Churn a slice of the measurement pairs between snapshots.
            for (auto& p : pairs) {
                if (rng.chance(config_.pair_churn)) fresh_pair(p);
            }
        }
        TracerouteDataset snapshot;
        snapshot.name = "RIPE-" + std::to_string(s + 1);
        snapshot.date = s < kDates.size() ? kDates[s] : "2022-12-01";
        snapshot.traces.reserve(pairs.size());
        for (const Pair& p : pairs) {
            auto trace = synthesizer.trace(p.src, p.dst, p.flow);
            if (trace) snapshot.traces.push_back(std::move(*trace));
        }
        snapshots.push_back(std::move(snapshot));
    }
    return snapshots;
}

ItdkDataset DatasetBuilder::itdk() const {
    util::Rng rng(config_.seed ^ 0x17D4);
    ItdkDataset dataset;
    dataset.name = "ITDK";
    dataset.date = "2022-02";

    // Sample the AS set with a bias toward larger networks (alias resolution
    // campaigns see well-connected cores far more often than small stubs).
    for (const AsNode& node : topology_->graph().nodes()) {
        const auto& routers = topology_->routers_in_as(node.asn);
        if (routers.empty()) continue;
        const double size_bias =
            std::min(1.0, 0.3 + static_cast<double>(routers.size()) / 50.0);
        if (!rng.chance(std::min(1.0, config_.itdk_as_fraction * 1.6 * size_bias))) continue;
        for (std::size_t router_index : routers) {
            const auto& router = topology_->router(router_index);
            // MIDAR/iffinder prerequisite: the router answers something.
            if (!router.responds_icmp() && !router.responds_tcp() && !router.responds_udp()) {
                continue;
            }
            if (router.interfaces().size() < 2) continue;  // singletons excluded
            AliasSet set;
            set.router_index = router_index;
            set.addresses = router.interfaces();
            dataset.alias_sets.push_back(std::move(set));
        }
    }
    return dataset;
}

}  // namespace lfp::sim
