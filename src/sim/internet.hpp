// The simulated wire: routes raw probe packets from the measurement vantage
// to the owning router and carries responses back, applying hop-count TTL
// decay and light random loss.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/topology.hpp"

namespace lfp::sim {

struct InternetConfig {
    std::uint64_t seed = 7;
    /// Per-direction packet loss probability.
    double loss_rate = 0.004;
};

class Internet {
  public:
    explicit Internet(Topology& topology, InternetConfig config = {})
        : topology_(&topology), config_(config), rng_(config.seed) {}

    /// Sends one packet and returns the response packet (if any): the
    /// request-response round trip of a single probe.
    std::optional<net::Bytes> transact(std::span<const std::uint8_t> probe);

    /// Routes a batch of probes in span order. Slot i of the result is
    /// probe i's response (nullopt = lost/filtered/unroutable), so callers
    /// can stamp per-probe delivery metadata without re-deriving the match.
    std::vector<std::optional<net::Bytes>> transact_batch(std::span<const net::Bytes> probes);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t responses_returned() const noexcept { return returned_; }
    [[nodiscard]] std::uint64_t packets_lost() const noexcept { return lost_; }

    [[nodiscard]] Topology& topology() noexcept { return *topology_; }

  private:
    Topology* topology_;
    InternetConfig config_;
    util::Rng rng_;
    std::uint64_t sent_ = 0;
    std::uint64_t returned_ = 0;
    std::uint64_t lost_ = 0;
};

}  // namespace lfp::sim
