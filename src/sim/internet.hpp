// The simulated wire: routes raw probe packets from the measurement vantage
// to the owning router and carries responses back, applying hop-count TTL
// decay, light random loss, and (optionally) path ICMP rate limiting.
//
// Loss is a pure per-packet function (a hash of the seed and the packet
// bytes), not a draw from a shared sequential RNG: whether a packet survives
// does not depend on what was sent before or concurrently. This makes a
// multi-vantage census deterministic — lanes can transact from several
// threads and every packet meets the same fate it would in a serial run.
// Corollary: byte-identical packets share a loss fate, so a retry loop must
// vary something (e.g. probe a target under a different ipid_base) to get
// an independent draw.
//
// ICMP rate limiting (off by default) is deliberately the opposite: a
// load-dependent token bucket shared by the whole path, modelling the
// aggregate ICMP generation budget the first hops grant one vantage. When
// the bucket is dry an ICMP-protocol response (echo reply or ICMP error —
// the answers to the ICMP and UDP probes) is replaced by a source-quench
// advisory quoting the probe. A prober that blasts past the budget loses
// responses; one that backs off keeps them — exactly the regime the
// adaptive in-flight window is built for. Because the outcome depends on
// *when* packets arrive, enable it only in scenarios that do not assert
// byte-identity across runs.
//
// Concurrent transact() calls are safe as long as no two threads probe
// interfaces of the *same* router at once (router counters are stateful);
// the CensusRunner's affinity assignment guarantees that.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "sim/topology.hpp"

namespace lfp::sim {

struct InternetConfig {
    std::uint64_t seed = 7;
    /// Per-direction packet loss probability.
    double loss_rate = 0.004;
    /// ICMP responses per second the path sustains before quenching; 0
    /// disables rate limiting (the default, and required by every scenario
    /// that asserts byte-identity — the bucket is wall-clock dependent).
    double icmp_rate_limit_per_sec = 0.0;
    /// Token-bucket burst capacity: this many ICMP responses may pass
    /// back-to-back before the refill rate becomes the binding constraint.
    double icmp_rate_limit_burst = 64.0;
};

class Internet {
  public:
    explicit Internet(Topology& topology, InternetConfig config = {})
        : topology_(&topology),
          config_(config),
          bucket_tokens_(config.icmp_rate_limit_burst),
          bucket_refill_at_(std::chrono::steady_clock::now()) {}

    /// Sends one packet and returns the response packet (if any): the
    /// request-response round trip of a single probe.
    std::optional<net::Bytes> transact(std::span<const std::uint8_t> probe);

    /// Routes a batch of probes in span order. Slot i of the result is
    /// probe i's response (nullopt = lost/filtered/unroutable), so callers
    /// can stamp per-probe delivery metadata without re-deriving the match.
    std::vector<std::optional<net::Bytes>> transact_batch(std::span<const net::Bytes> probes);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept {
        return sent_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t responses_returned() const noexcept {
        return returned_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t packets_lost() const noexcept {
        return lost_.load(std::memory_order_relaxed);
    }
    /// ICMP responses suppressed (and replaced by a quench) by the path
    /// rate limiter.
    [[nodiscard]] std::uint64_t responses_rate_limited() const noexcept {
        return rate_limited_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] Topology& topology() noexcept { return *topology_; }

  private:
    /// True when the packet is dropped in the given direction (0 = request,
    /// 1 = response). Pure in (seed, packet bytes, direction).
    [[nodiscard]] bool lost_in_transit(std::span<const std::uint8_t> packet,
                                       std::uint64_t direction) const noexcept;

    /// Takes one token from the ICMP budget; false = quench instead.
    [[nodiscard]] bool take_icmp_token();

    Topology* topology_;
    InternetConfig config_;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> returned_{0};
    std::atomic<std::uint64_t> lost_{0};
    std::atomic<std::uint64_t> rate_limited_{0};
    std::mutex bucket_mutex_;
    double bucket_tokens_;
    std::chrono::steady_clock::time_point bucket_refill_at_;
};

}  // namespace lfp::sim
