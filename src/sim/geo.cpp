#include "sim/geo.hpp"

#include <array>

namespace lfp::sim {

std::string_view to_string(Continent continent) noexcept {
    switch (continent) {
        case Continent::north_america: return "North America";
        case Continent::south_america: return "South America";
        case Continent::europe: return "Europe";
        case Continent::asia: return "Asia";
        case Continent::africa: return "Africa";
        case Continent::oceania: return "Oceania";
    }
    return "?";
}

std::string_view continent_code(Continent continent) noexcept {
    switch (continent) {
        case Continent::north_america: return "NA";
        case Continent::south_america: return "SA";
        case Continent::europe: return "EU";
        case Continent::asia: return "AS";
        case Continent::africa: return "AF";
        case Continent::oceania: return "OC";
    }
    return "?";
}

void GeoRegistry::assign(std::uint32_t asn, GeoInfo info) { by_asn_[asn] = std::move(info); }

const GeoInfo* GeoRegistry::lookup(std::uint32_t asn) const {
    auto it = by_asn_.find(asn);
    return it == by_asn_.end() ? nullptr : &it->second;
}

bool GeoRegistry::is_in_country(std::uint32_t asn, std::string_view country) const {
    const GeoInfo* info = lookup(asn);
    return info != nullptr && info->country == country;
}

GeoInfo GeoRegistry::draw_country(util::Rng& rng) {
    struct CountryWeight {
        const char* country;
        Continent continent;
        double weight;
    };
    // Rough registry distribution of ASes hosting core routers.
    static constexpr std::array<CountryWeight, 24> kCountries{{
        {"US", Continent::north_america, 21.0},
        {"CA", Continent::north_america, 2.5},
        {"MX", Continent::north_america, 1.0},
        {"BR", Continent::south_america, 4.0},
        {"AR", Continent::south_america, 1.2},
        {"CL", Continent::south_america, 0.8},
        {"DE", Continent::europe, 5.5},
        {"GB", Continent::europe, 4.5},
        {"FR", Continent::europe, 3.0},
        {"NL", Continent::europe, 2.5},
        {"IT", Continent::europe, 2.0},
        {"PL", Continent::europe, 2.0},
        {"ES", Continent::europe, 1.6},
        {"SE", Continent::europe, 1.4},
        {"CH", Continent::europe, 1.2},
        {"RU", Continent::europe, 5.0},
        {"UA", Continent::europe, 1.8},
        {"CN", Continent::asia, 6.0},
        {"IN", Continent::asia, 4.0},
        {"JP", Continent::asia, 3.0},
        {"ID", Continent::asia, 2.5},
        {"KR", Continent::asia, 1.5},
        {"ZA", Continent::africa, 1.5},
        {"AU", Continent::oceania, 1.8},
    }};
    std::array<double, kCountries.size()> weights{};
    for (std::size_t i = 0; i < kCountries.size(); ++i) weights[i] = kCountries[i].weight;
    const std::size_t pick = rng.weighted(weights);
    return GeoInfo{kCountries[pick].country, kCountries[pick].continent};
}

}  // namespace lfp::sim
