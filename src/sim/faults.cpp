#include "sim/faults.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace lfp::sim {
namespace {

// Per-class salts folded into the per-packet hash so the same packet draws
// independently for each fault class.
constexpr std::uint64_t kSendSalt = 0x51;
constexpr std::uint64_t kTruncateSalt = 0x52;
constexpr std::uint64_t kTruncateLenSalt = 0x53;
constexpr std::uint64_t kCorruptSalt = 0x54;
constexpr std::uint64_t kCorruptBitSalt = 0x55;
constexpr std::uint64_t kDuplicateSalt = 0x56;
constexpr std::uint64_t kReorderSalt = 0x57;
constexpr std::uint64_t kStallSalt = 0x58;

/// The same per-packet mix sim::Internet uses for loss: FNV-1a over the
/// bytes, a salt fold, then a splitmix64 avalanche. Pure in (seed, bytes,
/// salt) — no sequential RNG, so multi-lane faulted runs stay reproducible.
std::uint64_t mix_packet(std::span<const std::uint8_t> packet, std::uint64_t seed,
                         std::uint64_t salt) {
    std::uint64_t hash = 0xCBF29CE484222325ULL ^ seed;
    for (const std::uint8_t byte : packet) {
        hash ^= byte;
        hash *= 0x100000001B3ULL;
    }
    hash ^= salt * 0x9E3779B97F4A7C15ULL;
    hash ^= hash >> 30;
    hash *= 0xBF58476D1CE4E5B9ULL;
    hash ^= hash >> 27;
    hash *= 0x94D049BB133111EBULL;
    hash ^= hash >> 31;
    return hash;
}

bool draw(std::uint64_t hash, double rate) {
    return static_cast<double>(hash >> 11) * 0x1.0p-53 < rate;
}

[[noreturn]] void fault_env_error(const char* name, const char* value) {
    throw std::invalid_argument(std::string("fault plan: unparseable ") + name + "='" +
                                value + "'");
}

double env_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0') fault_env_error(name, value);
    return parsed;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return fallback;
    std::uint64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(value, value + std::string_view(value).size(),
                                           parsed);
    if (ec != std::errc{} || *ptr != '\0') fault_env_error(name, value);
    return parsed;
}

}  // namespace

bool FaultPlan::any() const noexcept {
    return send_fail_rate > 0.0 || truncate_rate > 0.0 || corrupt_rate > 0.0 ||
           duplicate_rate > 0.0 || reorder_rate > 0.0 || stall_rate > 0.0 ||
           wedge_after != kNeverWedge;
}

void FaultPlan::validate() const {
    const double rates[] = {send_fail_rate, truncate_rate, corrupt_rate,
                            duplicate_rate, reorder_rate,  stall_rate};
    for (const double rate : rates) {
        if (rate < 0.0 || rate > 1.0) {
            throw std::invalid_argument("fault plan: rates must be within [0, 1]");
        }
    }
}

FaultPlan FaultPlan::from_env() {
    FaultPlan plan;
    plan.seed = env_u64("LFP_FAULT_SEED", plan.seed);
    plan.send_fail_rate = env_double("LFP_FAULT_SEND", plan.send_fail_rate);
    plan.truncate_rate = env_double("LFP_FAULT_TRUNCATE", plan.truncate_rate);
    plan.corrupt_rate = env_double("LFP_FAULT_CORRUPT", plan.corrupt_rate);
    plan.duplicate_rate = env_double("LFP_FAULT_DUPLICATE", plan.duplicate_rate);
    plan.reorder_rate = env_double("LFP_FAULT_REORDER", plan.reorder_rate);
    plan.stall_rate = env_double("LFP_FAULT_STALL", plan.stall_rate);
    plan.wedge_after = env_u64("LFP_FAULT_WEDGE_AFTER", plan.wedge_after);
    plan.validate();
    return plan;
}

FaultInjectingTransport::FaultInjectingTransport(probe::ProbeTransport& inner, FaultPlan plan)
    : inner_(&inner), plan_(plan) {
    plan_.validate();
}

bool FaultInjectingTransport::wedged() const noexcept {
    return submitted_.load(std::memory_order_relaxed) >= plan_.wedge_after;
}

void FaultInjectingTransport::send_batch(std::span<const net::Bytes> packets) {
    // First pass: decide each packet's fate without copying. The common case
    // (whole batch survives) forwards the caller's span untouched.
    bool any_dropped = false;
    std::uint64_t ordinal = submitted_.load(std::memory_order_relaxed);
    for (const net::Bytes& packet : packets) {
        if (ordinal >= plan_.wedge_after ||
            (plan_.send_fail_rate > 0.0 &&
             draw(mix_packet(packet, plan_.seed, kSendSalt), plan_.send_fail_rate))) {
            any_dropped = true;
        }
        ++ordinal;
    }
    if (!any_dropped) {
        submitted_.store(ordinal, std::memory_order_relaxed);
        inner_->send_batch(packets);
        return;
    }

    std::vector<net::Bytes> survivors;
    survivors.reserve(packets.size());
    ordinal = submitted_.load(std::memory_order_relaxed);
    for (const net::Bytes& packet : packets) {
        const std::uint64_t at = ordinal++;
        if (at >= plan_.wedge_after) {
            swallowed_by_wedge_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (plan_.send_fail_rate > 0.0 &&
            draw(mix_packet(packet, plan_.seed, kSendSalt), plan_.send_fail_rate)) {
            // EAGAIN/ENOBUFS-shaped: the packet never reaches the wire (or,
            // in the sim, the stateful router behind it).
            send_faults_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        survivors.push_back(packet);
    }
    submitted_.store(ordinal, std::memory_order_relaxed);
    if (!survivors.empty()) inner_->send_batch(survivors);
}

std::vector<net::Bytes> FaultInjectingTransport::poll_responses(
    std::chrono::milliseconds timeout) {
    if (wedged()) {
        // A wedged lane's receiver hangs: deliver nothing, but honour the
        // poll timeout so the engine's receive loop doesn't busy-spin.
        if (timeout.count() > 0) std::this_thread::sleep_for(timeout);
        return {};
    }

    std::vector<net::Bytes> delivered;
    // Release last cycle's stalled packets ahead of fresh arrivals.
    if (!stalled_queue_.empty()) {
        delivered = std::move(stalled_queue_);
        stalled_queue_.clear();
    }

    std::vector<net::Bytes> inbound = inner_->poll_responses(timeout);
    for (net::Bytes& packet : inbound) {
        if (plan_.stall_rate > 0.0 &&
            draw(mix_packet(packet, plan_.seed, kStallSalt), plan_.stall_rate)) {
            stalled_.fetch_add(1, std::memory_order_relaxed);
            stalled_queue_.push_back(std::move(packet));
            continue;
        }
        const bool reorder =
            plan_.reorder_rate > 0.0 &&
            draw(mix_packet(packet, plan_.seed, kReorderSalt), plan_.reorder_rate);
        if (plan_.truncate_rate > 0.0 && !packet.empty() &&
            draw(mix_packet(packet, plan_.seed, kTruncateSalt), plan_.truncate_rate)) {
            const std::uint64_t keep =
                mix_packet(packet, plan_.seed, kTruncateLenSalt) % packet.size();
            packet.resize(static_cast<std::size_t>(keep));
            truncated_.fetch_add(1, std::memory_order_relaxed);
        }
        if (plan_.corrupt_rate > 0.0 && !packet.empty() &&
            draw(mix_packet(packet, plan_.seed, kCorruptSalt), plan_.corrupt_rate)) {
            const std::uint64_t bit =
                mix_packet(packet, plan_.seed, kCorruptBitSalt) % (packet.size() * 8);
            packet[static_cast<std::size_t>(bit / 8)] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
            corrupted_.fetch_add(1, std::memory_order_relaxed);
        }
        const bool duplicate =
            plan_.duplicate_rate > 0.0 &&
            draw(mix_packet(packet, plan_.seed, kDuplicateSalt), plan_.duplicate_rate);
        if (duplicate) {
            duplicated_.fetch_add(1, std::memory_order_relaxed);
            delivered.push_back(packet);  // first copy; original follows below
        }
        if (reorder) {
            reordered_.fetch_add(1, std::memory_order_relaxed);
            reorder_queue_.push_back(std::move(packet));
            continue;
        }
        delivered.push_back(std::move(packet));
    }
    // Reordered packets land behind everything else this cycle — they jumped
    // the queue backwards relative to their batch position.
    for (net::Bytes& packet : reorder_queue_) delivered.push_back(std::move(packet));
    reorder_queue_.clear();
    return delivered;
}

bool FaultInjectingTransport::drained() const {
    // A wedged lane can never prove silence: in-flight probes were swallowed,
    // not answered, and claiming drained would let the engine fail their
    // slots instantly instead of looking wedged to the watchdog.
    if (wedged()) return false;
    return stalled_queue_.empty() && reorder_queue_.empty() && inner_->drained();
}

net::IPv4Address FaultInjectingTransport::vantage_address() const {
    return inner_->vantage_address();
}

std::optional<std::uint64_t> FaultInjectingTransport::backend_hint(
    net::IPv4Address target) const {
    return inner_->backend_hint(target);
}

std::chrono::milliseconds FaultInjectingTransport::transact_timeout() const {
    return inner_->transact_timeout();
}

std::uint64_t FaultInjectingTransport::send_faults() const noexcept {
    return send_faults_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::swallowed_by_wedge() const noexcept {
    return swallowed_by_wedge_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::truncated() const noexcept {
    return truncated_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::corrupted() const noexcept {
    return corrupted_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::duplicated() const noexcept {
    return duplicated_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::reordered() const noexcept {
    return reordered_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
}
std::uint64_t FaultInjectingTransport::injected_total() const noexcept {
    return send_faults() + swallowed_by_wedge() + truncated() + corrupted() + duplicated() +
           reordered() + stalled();
}

}  // namespace lfp::sim
