#include "sim/scale_world.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "snmp/snmpv3.hpp"
#include "stack/simulated_router.hpp"  // kProbePort / kMgmtPort
#include "util/alloc_trace.hpp"

namespace lfp::sim {
namespace {

/// splitmix64 finalizer: every draw in the scale world is some mix64() of
/// the seed, the target, and a domain constant — stateless and replayable.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Uniform [0,1) draw from 20 bits of hash vs a probability.
bool chance(std::uint64_t bits, double probability) noexcept {
    if (probability <= 0.0) return false;
    if (probability >= 1.0) return true;
    const double draw =
        static_cast<double>(bits & 0xFFFFF) / static_cast<double>(1u << 20);
    return draw < probability;
}

// Domain constants separating the independent draws of one target.
constexpr std::uint64_t kDomExists = 0xE115;
constexpr std::uint64_t kDomProfile = 0x9F0F;
constexpr std::uint64_t kDomIcmp = 0xA111;
constexpr std::uint64_t kDomClosed = 0xB222;
constexpr std::uint64_t kDomFlipTcp = 0xB223;
constexpr std::uint64_t kDomFlipUdp = 0xB224;
constexpr std::uint64_t kDomSnmp = 0xC333;
constexpr std::uint64_t kDomIpidBase = 0xD444;
constexpr std::uint64_t kDomIpidStep = 0xD445;
constexpr std::uint64_t kDomIpidRandom = 0xD446;
constexpr std::uint64_t kDomEngine = 0xEE01;
constexpr std::uint64_t kDomLoss = 0x1055;

/// Group mode resolution, mirroring SimulatedRouter: a shared counter group
/// behaves like the first protocol that references it.
stack::IpidMode group_mode(const stack::IpidBehaviour& b, std::uint8_t group) noexcept {
    if (b.icmp_group == group) return b.icmp;
    if (b.tcp_group == group) return b.tcp;
    if (b.udp_group == group) return b.udp;
    return stack::IpidMode::incremental;
}

std::uint8_t group_for(const stack::IpidBehaviour& b, std::size_t protocol) noexcept {
    switch (protocol) {
        case 0: return b.icmp_group;
        case 1: return b.tcp_group;
        default: return b.udp_group;
    }
}

}  // namespace

ScaleTransport::ScaleTransport(ScaleWorldConfig config) : config_(config) {
    // Weighted pick table over the standard catalog: persona profile =
    // table[hash % size]. 4096 entries keep every profile with weight
    // >= total/4096 representable.
    const auto all = stack::standard_catalog().all();
    double total = 0.0;
    for (const auto& weighted : all) total += weighted.weight;
    constexpr std::size_t kTableSize = 4096;
    for (const auto& weighted : all) {
        const auto entries = static_cast<std::size_t>(
            std::max(1.0, std::round(weighted.weight / total * kTableSize)));
        for (std::size_t i = 0; i < entries; ++i) pick_table_.push_back(&weighted.profile);
    }
}

ScaleTransport::Persona ScaleTransport::persona_for(net::IPv4Address target) const {
    Persona persona;
    persona.entropy = mix64(config_.seed ^ (0x9E3779B97F4A7C15ULL *
                                            (static_cast<std::uint64_t>(target.value()) + 1)));
    persona.profile =
        pick_table_[mix64(persona.entropy ^ kDomProfile) % pick_table_.size()];
    persona.exists = chance(mix64(persona.entropy ^ kDomExists), config_.responsive_fraction);
    if (!persona.exists) return persona;

    const stack::ResponsePolicy& policy = persona.profile->response;
    persona.responds_icmp = chance(mix64(persona.entropy ^ kDomIcmp), policy.icmp);
    // One ACL governs both closed-port protocols (see SimulatedRouter);
    // each flips rarely, and never at the deterministic extremes.
    const double closed = std::min(1.0, 0.5 * (policy.tcp + policy.udp));
    const bool closed_respond = chance(mix64(persona.entropy ^ kDomClosed), closed);
    const double flip = (closed > 0.0 && closed < 1.0) ? 0.04 : 0.0;
    const bool flip_tcp = chance(mix64(persona.entropy ^ kDomFlipTcp), flip);
    const bool flip_udp = chance(mix64(persona.entropy ^ kDomFlipUdp), flip);
    persona.responds_tcp = closed_respond ? !flip_tcp : flip_tcp;
    persona.responds_udp = closed_respond ? !flip_udp : flip_udp;
    persona.snmp_enabled = chance(mix64(persona.entropy ^ kDomSnmp), policy.snmpv3);
    return persona;
}

std::uint16_t ScaleTransport::response_ipid(const Persona& persona, std::size_t protocol,
                                            std::size_t request_ipid) const {
    const stack::IpidBehaviour& behaviour = persona.profile->ipid;
    const std::uint8_t group = group_for(behaviour, protocol);
    const std::uint64_t base_entropy = mix64(persona.entropy ^ kDomIpidBase ^ group);
    const auto base = static_cast<std::uint16_t>(base_entropy & 0xFFFF);
    // Per-target counter stride: request IPIDs increment by one per probe in
    // global send order, so base + step*request_ipid advances monotonically
    // across every probe drawing from this group — the shared-counter
    // trajectory LFP fingerprints — while the stride varies the per-step
    // deltas the IPID-step analyses look at.
    const auto step = static_cast<std::uint16_t>(
        1 + (mix64(persona.entropy ^ kDomIpidStep) % 7));
    switch (group_mode(behaviour, group)) {
        case stack::IpidMode::zero: return 0;
        case stack::IpidMode::static_value: return base == 0 ? 0x1234 : base;
        case stack::IpidMode::random:
            return static_cast<std::uint16_t>(
                mix64(persona.entropy ^ kDomIpidRandom ^ request_ipid) & 0xFFFF);
        case stack::IpidMode::duplicate_pair:
            // Consecutive requests share a value; the counter advances every
            // second packet.
            return static_cast<std::uint16_t>(base + step * (request_ipid >> 1));
        case stack::IpidMode::incremental:
        default:
            return static_cast<std::uint16_t>(base + step * request_ipid);
    }
}

std::optional<net::Bytes> ScaleTransport::exchange(std::span<const std::uint8_t> packet) {
    ++packets_seen_;
    if (packet.size() < net::Ipv4Header::kSize) return std::nullopt;
    // Fast path: destination and IPID read straight from the raw bytes, so
    // dark addresses and lost packets cost no parse at all — at 10M
    // targets most packets take one of these two exits.
    const std::uint32_t target =
        (static_cast<std::uint32_t>(packet[16]) << 24) |
        (static_cast<std::uint32_t>(packet[17]) << 16) |
        (static_cast<std::uint32_t>(packet[18]) << 8) | packet[19];
    const std::uint16_t request_ipid =
        static_cast<std::uint16_t>((packet[4] << 8) | packet[5]);
    const Persona persona = persona_for(net::IPv4Address(target));
    if (!persona.exists) return std::nullopt;
    if (config_.loss_rate > 0.0 &&
        chance(mix64(config_.seed ^ kDomLoss ^
                     (static_cast<std::uint64_t>(target) << 16) ^ request_ipid),
               config_.loss_rate)) {
        ++packets_lost_;
        return std::nullopt;
    }

    // Everything past the zero-alloc early exits is simulated-responder
    // work; bucket its allocations apart from the probing engine's own.
    util::AllocStageScope stage("sim");
    auto parsed = net::parse_packet(packet);
    if (!parsed) return std::nullopt;
    const net::ParsedPacket& probe = parsed.value();
    switch (probe.ip.protocol) {
        case net::Protocol::icmp: return respond_icmp(persona, probe);
        case net::Protocol::tcp: return respond_tcp(persona, probe);
        case net::Protocol::udp: {
            const auto* udp = probe.udp();
            if (udp != nullptr && udp->destination_port == snmp::kSnmpPort) {
                return respond_snmp(persona, probe);
            }
            return respond_udp(persona, probe, packet);
        }
    }
    return std::nullopt;
}

std::optional<net::Bytes> ScaleTransport::respond_icmp(const Persona& persona,
                                                       const net::ParsedPacket& probe) {
    if (!persona.responds_icmp) return std::nullopt;
    const auto* message = probe.icmp();
    if (message == nullptr) return std::nullopt;
    const auto* echo = std::get_if<net::IcmpEcho>(message);
    if (echo == nullptr || echo->is_reply) return std::nullopt;

    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = persona.profile->ittl_icmp;
    ip.identification = persona.profile->ipid.icmp_echoes_request_ipid
                            ? probe.ip.identification
                            : response_ipid(persona, 0, probe.ip.identification);
    return net::make_icmp_echo_reply(ip, *echo);
}

std::optional<net::Bytes> ScaleTransport::respond_tcp(const Persona& persona,
                                                      const net::ParsedPacket& probe) {
    if (!persona.responds_tcp) return std::nullopt;
    const auto* segment = probe.tcp();
    if (segment == nullptr) return std::nullopt;
    if (segment->flags.rst) return std::nullopt;  // never answer a reset
    if (segment->flags.ack && !persona.profile->rst_to_ack_probe) return std::nullopt;

    // Closed port -> RST; the sequence-number choice for the SYN probe with
    // a non-zero ack field is the LFP compliance feature.
    net::TcpSegment rst;
    rst.source_port = segment->destination_port;
    rst.destination_port = segment->source_port;
    rst.window = 0;
    rst.flags.rst = true;
    if (segment->flags.ack) {
        rst.sequence = segment->acknowledgment;
    } else {
        rst.flags.ack = true;
        rst.acknowledgment = segment->sequence + (segment->flags.syn ? 1 : 0);
        rst.sequence = persona.profile->rst_seq_from_ack ? segment->acknowledgment : 0;
    }
    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = persona.profile->ittl_tcp;
    ip.identification = persona.profile->ipid.tcp == stack::IpidMode::zero
                            ? 0
                            : response_ipid(persona, 1, probe.ip.identification);
    return net::make_tcp_packet(ip, rst);
}

std::optional<net::Bytes> ScaleTransport::respond_udp(const Persona& persona,
                                                      const net::ParsedPacket& probe,
                                                      std::span<const std::uint8_t> raw) {
    if (!persona.responds_udp) return std::nullopt;
    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = persona.profile->ittl_udp;
    ip.identification = response_ipid(persona, 2, probe.ip.identification);
    return net::make_icmp_error(ip, net::IcmpType::destination_unreachable,
                                net::kIcmpCodePortUnreachable, raw,
                                persona.profile->icmp_quote_limit);
}

std::optional<net::Bytes> ScaleTransport::respond_snmp(const Persona& persona,
                                                       const net::ParsedPacket& probe) {
    if (!persona.snmp_enabled) return std::nullopt;
    const auto* udp = probe.udp();
    auto request = snmp::DiscoveryRequest::parse(udp->payload);
    if (!request) return std::nullopt;

    // Engine identity: stable per target, format per profile.
    const std::uint32_t enterprise = stack::enterprise_number(persona.profile->vendor);
    const std::uint64_t engine_entropy = mix64(persona.entropy ^ kDomEngine);
    snmp::EngineId engine_id;
    switch (persona.profile->engine_format) {
        case snmp::EngineIdFormat::mac: {
            std::array<std::uint8_t, 6> mac{};
            for (std::size_t i = 0; i < mac.size(); ++i) {
                mac[i] = static_cast<std::uint8_t>(engine_entropy >> (8 * i));
            }
            engine_id = snmp::make_mac_engine_id(enterprise, mac);
            break;
        }
        case snmp::EngineIdFormat::text:
            engine_id = snmp::make_text_engine_id(
                enterprise, std::string(stack::to_string(persona.profile->vendor)) + "-" +
                                std::to_string(engine_entropy & 0xFFFFFF));
            break;
        default: {
            net::Bytes octets(8);
            for (std::size_t i = 0; i < octets.size(); ++i) {
                octets[i] = static_cast<std::uint8_t>(engine_entropy >> (8 * i));
            }
            engine_id = snmp::make_octets_engine_id(enterprise, std::move(octets));
            break;
        }
    }

    snmp::DiscoveryResponse response;
    response.message_id = request.value().message_id;
    response.engine_id = engine_id;
    response.engine_boots = static_cast<std::int32_t>(1 + (engine_entropy % 60));
    response.engine_time =
        static_cast<std::int32_t>(mix64(engine_entropy) % (60ull * 60 * 24 * 500));

    net::UdpDatagram reply;
    reply.source_port = snmp::kSnmpPort;
    reply.destination_port = udp->source_port;
    reply.payload = response.serialize();

    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = persona.profile->ittl_udp;
    ip.identification = response_ipid(persona, 2, probe.ip.identification);
    return net::make_udp_packet(ip, reply);
}

}  // namespace lfp::sim
