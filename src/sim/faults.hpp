/// \file
/// Deterministic fault injection for any ProbeTransport.
///
/// FaultInjectingTransport decorates an inner transport with the failure
/// modes a live census actually meets: transient send failures
/// (EAGAIN/ENOBUFS-shaped drops before the wire), truncated and
/// bit-corrupted response payloads, duplicated and reordered deliveries,
/// receiver stalls, and a fully wedged lane (the process-level analogue of
/// a dead vantage). Every decision is a pure function of
/// (plan seed, packet bytes, fault-class salt) — the same FNV-1a +
/// splitmix64 per-packet mix sim::Internet uses for loss — so a faulted
/// run is reproducible from its seed alone: no sequential RNG state, no
/// dependence on thread interleaving for *which* packets are hit. (For
/// reorder/stall the *selection* is per-packet deterministic; delivery
/// timing naturally remains timing-dependent, which the flow-key demux is
/// indifferent to.)
///
/// The decorator honours the one-sender/one-receiver threading contract of
/// ProbeTransport: send-side state is touched only from send_batch(),
/// receive-side queues only from poll_responses()/drained(); the few
/// counters both sides share are atomics.
///
/// Wedge semantics: once `wedge_after` packets have been submitted
/// (0 = wedged from birth), the transport swallows every further send
/// *before* it reaches the inner transport, delivers nothing, and reports
/// drained() == false forever — exactly what a hung lane looks like to the
/// engine, and the shape the CensusRunner watchdog is built to detect.
/// Swallowing before the inner transport matters: simulated routers advance
/// per-packet state at send time, so a wedged-from-birth lane leaves its
/// targets' routers untouched and a supervised re-probe merges
/// byte-identically to an unfaulted run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "probe/transport.hpp"

namespace lfp::sim {

/// Per-fault-class rates plus the seed that makes them reproducible.
/// All rates are probabilities in [0, 1]; the default plan injects nothing.
struct FaultPlan {
    static constexpr std::uint64_t kNeverWedge = ~0ULL;

    std::uint64_t seed = 0xFA171A7EULL;  ///< per-packet hash seed (LFP_FAULT_SEED)
    double send_fail_rate = 0.0;   ///< drop a packet before the wire (LFP_FAULT_SEND)
    double truncate_rate = 0.0;    ///< cut a response short (LFP_FAULT_TRUNCATE)
    double corrupt_rate = 0.0;     ///< flip one response bit (LFP_FAULT_CORRUPT)
    double duplicate_rate = 0.0;   ///< deliver a response twice (LFP_FAULT_DUPLICATE)
    double reorder_rate = 0.0;     ///< delay a response behind its batch (LFP_FAULT_REORDER)
    double stall_rate = 0.0;       ///< hold a response one poll cycle (LFP_FAULT_STALL)
    /// Packets to pass before the lane wedges solid; kNeverWedge = healthy.
    /// 0 wedges from birth (LFP_FAULT_WEDGE_AFTER).
    std::uint64_t wedge_after = kNeverWedge;

    /// True when any fault class can fire — the ExperimentWorld only wraps
    /// transports when this holds, keeping the healthy path undecorated.
    [[nodiscard]] bool any() const noexcept;

    /// Throws std::invalid_argument on a rate outside [0, 1].
    void validate() const;

    /// Defaults overlaid with the LFP_FAULT_* environment knobs (see the
    /// README knob table). Unparseable values throw std::invalid_argument
    /// naming the variable, mirroring WorldConfig::from_env.
    [[nodiscard]] static FaultPlan from_env();
};

/// The decorator. Non-owning over the inner transport (same lifetime rules
/// as CensusPlan::vantages). Read-only queries forward to the inner
/// transport so lane assignment still sees ground-truth backend hints.
class FaultInjectingTransport final : public probe::ProbeTransport {
  public:
    /// Validates the plan (throws std::invalid_argument on bad rates).
    FaultInjectingTransport(probe::ProbeTransport& inner, FaultPlan plan);

    void send_batch(std::span<const net::Bytes> packets) override;
    [[nodiscard]] std::vector<net::Bytes> poll_responses(
        std::chrono::milliseconds timeout) override;
    // poll_responses_into() deliberately keeps the base-class wrapper: the
    // fault pipeline runs inside poll_responses(), so routing the pooled
    // variant through it keeps injection applying to every receive path.
    /// Buffer returns pass straight through — recycling is the inner
    /// transport's optimisation and faults play no part in it.
    void recycle(net::Bytes&& buffer) override { inner_->recycle(std::move(buffer)); }
    [[nodiscard]] bool drained() const override;
    [[nodiscard]] net::IPv4Address vantage_address() const override;
    [[nodiscard]] std::optional<std::uint64_t> backend_hint(
        net::IPv4Address target) const override;
    [[nodiscard]] std::chrono::milliseconds transact_timeout() const override;

    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] probe::ProbeTransport& inner() noexcept { return *inner_; }

    /// True once wedge_after packets have been submitted.
    [[nodiscard]] bool wedged() const noexcept;

    // Per-class tallies, readable from any thread (tests and ops assert on
    // these; a faulted run that injected nothing is a misconfigured run).
    [[nodiscard]] std::uint64_t send_faults() const noexcept;
    [[nodiscard]] std::uint64_t swallowed_by_wedge() const noexcept;
    [[nodiscard]] std::uint64_t truncated() const noexcept;
    [[nodiscard]] std::uint64_t corrupted() const noexcept;
    [[nodiscard]] std::uint64_t duplicated() const noexcept;
    [[nodiscard]] std::uint64_t reordered() const noexcept;
    [[nodiscard]] std::uint64_t stalled() const noexcept;
    [[nodiscard]] std::uint64_t injected_total() const noexcept;

  private:
    probe::ProbeTransport* inner_;
    FaultPlan plan_;

    /// Packets submitted to send_batch (sender thread writes, receiver
    /// thread reads for the wedge check) — hence atomic.
    std::atomic<std::uint64_t> submitted_{0};

    // Receiver-thread-only delivery queues.
    std::vector<net::Bytes> stalled_queue_;   ///< held back one poll cycle
    std::vector<net::Bytes> reorder_queue_;   ///< pushed behind the current batch

    std::atomic<std::uint64_t> send_faults_{0};
    std::atomic<std::uint64_t> swallowed_by_wedge_{0};
    std::atomic<std::uint64_t> truncated_{0};
    std::atomic<std::uint64_t> corrupted_{0};
    std::atomic<std::uint64_t> duplicated_{0};
    std::atomic<std::uint64_t> reordered_{0};
    std::atomic<std::uint64_t> stalled_{0};
};

}  // namespace lfp::sim
