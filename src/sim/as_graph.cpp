#include "sim/as_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace lfp::sim {

std::uint32_t AsGraph::add_as(AsTier tier) {
    AsNode node;
    node.asn = next_asn_++;
    node.tier = tier;
    index_[node.asn] = nodes_.size();
    nodes_.push_back(std::move(node));
    return nodes_.back().asn;
}

void AsGraph::add_provider_customer(std::uint32_t provider, std::uint32_t customer) {
    nodes_[index_of(provider)].customers.push_back(customer);
    nodes_[index_of(customer)].providers.push_back(provider);
}

void AsGraph::add_peering(std::uint32_t a, std::uint32_t b) {
    nodes_[index_of(a)].peers.push_back(b);
    nodes_[index_of(b)].peers.push_back(a);
}

const AsNode& AsGraph::node(std::uint32_t asn) const { return nodes_[index_of(asn)]; }

bool AsGraph::contains(std::uint32_t asn) const { return index_.contains(asn); }

std::size_t AsGraph::index_of(std::uint32_t asn) const {
    auto it = index_.find(asn);
    if (it == index_.end()) throw std::out_of_range("unknown ASN");
    return it->second;
}

AsGraph::RoutingTable AsGraph::routes_to(std::uint32_t destination) const {
    return routes_to_avoiding(destination, {});
}

AsGraph::RoutingTable AsGraph::routes_to_avoiding(std::uint32_t destination,
                                                  std::vector<std::uint32_t> excluded) const {
    RoutingTable table;
    table.graph_ = this;
    table.destination_ = destination;
    table.excluded_ = std::move(excluded);
    table.compute();
    return table;
}

bool AsGraph::RoutingTable::is_excluded(std::uint32_t asn) const {
    return std::find(excluded_.begin(), excluded_.end(), asn) != excluded_.end();
}

void AsGraph::RoutingTable::compute() {
    const auto& nodes = graph_->nodes_;
    routes_.assign(nodes.size(), {});
    if (!graph_->contains(destination_) || is_excluded(destination_)) return;

    const std::size_t dst_index = graph_->index_of(destination_);
    // Gao-Rexford route propagation toward a single destination.
    //
    // Phase A — customer routes: propagate from the destination along
    // customer→provider edges (a provider reaches the destination through
    // its customer). BFS yields shortest customer routes.
    routes_[dst_index] = {0, 0, destination_};
    std::queue<std::size_t> queue;
    queue.push(dst_index);
    while (!queue.empty()) {
        const std::size_t current = queue.front();
        queue.pop();
        const Route& route = routes_[current];
        for (std::uint32_t provider_asn : nodes[current].providers) {
            if (is_excluded(provider_asn)) continue;
            const std::size_t p = graph_->index_of(provider_asn);
            if (routes_[p].hops != -1) continue;  // BFS: first visit is shortest
            routes_[p] = {route.hops + 1, 0, nodes[current].asn};
            queue.push(p);
        }
    }

    // Phase B — peer routes: a single peer edge on top of a customer route.
    // Customer routes are exported to peers; peer routes are not re-exported
    // except to customers (handled in phase C).
    std::vector<Route> peer_routes(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (routes_[i].hops == -1 || routes_[i].kind != 0) continue;
        for (std::uint32_t peer_asn : nodes[i].peers) {
            if (is_excluded(peer_asn)) continue;
            const std::size_t p = graph_->index_of(peer_asn);
            if (routes_[p].hops != -1) continue;  // customer route wins
            const int hops = routes_[i].hops + 1;
            if (peer_routes[p].hops == -1 || hops < peer_routes[p].hops ||
                (hops == peer_routes[p].hops && nodes[i].asn < peer_routes[p].next_hop)) {
                peer_routes[p] = {hops, 1, nodes[i].asn};
            }
        }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (routes_[i].hops == -1 && peer_routes[i].hops != -1) routes_[i] = peer_routes[i];
    }

    // Phase C — provider routes: every routed AS exports its best route to
    // its customers. Dijkstra ordering (unit weights, heterogeneous source
    // depths) yields shortest provider routes.
    using Entry = std::pair<int, std::size_t>;  // (hops at customer, customer index)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (routes_[i].hops == -1) continue;
        for (std::uint32_t customer_asn : nodes[i].customers) {
            if (is_excluded(customer_asn)) continue;
            const std::size_t c = graph_->index_of(customer_asn);
            if (routes_[c].hops != -1) continue;
            frontier.push({routes_[i].hops + 1, c});
        }
    }
    // Track tentative provider routes so we can fill next_hop on settle.
    while (!frontier.empty()) {
        const auto [hops, c] = frontier.top();
        frontier.pop();
        if (routes_[c].hops != -1) continue;  // already settled
        // Find the best provider that offers this hop count (deterministic
        // tie-break on ASN).
        std::uint32_t best_provider = 0;
        for (std::uint32_t provider_asn : nodes[c].providers) {
            if (is_excluded(provider_asn)) continue;
            const std::size_t p = graph_->index_of(provider_asn);
            if (routes_[p].hops == hops - 1) {
                if (best_provider == 0 || provider_asn < best_provider) {
                    best_provider = provider_asn;
                }
            }
        }
        if (best_provider == 0) continue;  // stale queue entry
        routes_[c] = {hops, 2, best_provider};
        for (std::uint32_t customer_asn : nodes[c].customers) {
            if (is_excluded(customer_asn)) continue;
            const std::size_t g = graph_->index_of(customer_asn);
            if (routes_[g].hops == -1) frontier.push({hops + 1, g});
        }
    }
}

std::optional<AsPath> AsGraph::RoutingTable::path_from(std::uint32_t source) const {
    if (!graph_->contains(source) || is_excluded(source)) return std::nullopt;
    std::size_t current = graph_->index_of(source);
    if (routes_[current].hops == -1) return std::nullopt;
    AsPath path;
    path.push_back(source);
    while (graph_->nodes_[current].asn != destination_) {
        const std::uint32_t next = routes_[current].next_hop;
        path.push_back(next);
        current = graph_->index_of(next);
        if (path.size() > graph_->nodes_.size()) return std::nullopt;  // defensive
    }
    return path;
}

bool AsGraph::RoutingTable::reachable_from(std::uint32_t source) const {
    if (!graph_->contains(source) || is_excluded(source)) return false;
    return routes_[graph_->index_of(source)].hops != -1;
}

std::optional<AsPath> AsGraph::RoutingTable::path_avoiding(
    std::uint32_t source, const std::vector<std::uint32_t>& excluded) const {
    RoutingTable alternative = graph_->routes_to_avoiding(destination_, excluded);
    return alternative.path_from(source);
}

}  // namespace lfp::sim
