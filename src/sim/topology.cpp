#include "sim/topology.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/rng.hpp"

namespace lfp::sim {

namespace {

using stack::Vendor;

/// Regional primary-vendor market shares (Appendix A, Figure 21 shapes).
struct MarketShare {
    Vendor vendor;
    double weight;
};

std::span<const MarketShare> market_for(Continent continent) {
    static const std::array<MarketShare, 16> kNa{{
        {Vendor::cisco, 62}, {Vendor::juniper, 17}, {Vendor::huawei, 1.5},
        {Vendor::mikrotik, 4}, {Vendor::nokia, 3}, {Vendor::brocade, 2.5},
        {Vendor::net_snmp, 3}, {Vendor::arista, 2}, {Vendor::h3c, 0.4},
        {Vendor::ericsson, 1}, {Vendor::extreme, 1.5}, {Vendor::fortinet, 1},
        {Vendor::adva, 0.5}, {Vendor::dlink, 0.4}, {Vendor::zte, 0.2},
        {Vendor::ruijie, 0.2},
    }};
    static const std::array<MarketShare, 16> kEu{{
        {Vendor::cisco, 50}, {Vendor::juniper, 12}, {Vendor::huawei, 8},
        {Vendor::mikrotik, 15}, {Vendor::nokia, 4}, {Vendor::brocade, 1},
        {Vendor::net_snmp, 3.5}, {Vendor::arista, 1}, {Vendor::h3c, 1},
        {Vendor::ericsson, 1.5}, {Vendor::extreme, 0.8}, {Vendor::fortinet, 0.7},
        {Vendor::adva, 0.7}, {Vendor::dlink, 0.4}, {Vendor::zte, 0.4},
        {Vendor::ruijie, 0.3},
    }};
    static const std::array<MarketShare, 16> kAsia{{
        {Vendor::cisco, 25}, {Vendor::juniper, 8}, {Vendor::huawei, 38},
        {Vendor::mikrotik, 6}, {Vendor::nokia, 1.5}, {Vendor::brocade, 0.5},
        {Vendor::net_snmp, 2}, {Vendor::arista, 0.5}, {Vendor::h3c, 7},
        {Vendor::ericsson, 1}, {Vendor::extreme, 0.5}, {Vendor::fortinet, 0.5},
        {Vendor::adva, 0.2}, {Vendor::dlink, 1.3}, {Vendor::zte, 5},
        {Vendor::ruijie, 3.5},
    }};
    static const std::array<MarketShare, 16> kSa{{
        {Vendor::cisco, 27}, {Vendor::juniper, 8}, {Vendor::huawei, 34},
        {Vendor::mikrotik, 18}, {Vendor::nokia, 1.5}, {Vendor::brocade, 0.5},
        {Vendor::net_snmp, 4}, {Vendor::arista, 0.3}, {Vendor::h3c, 1},
        {Vendor::ericsson, 0.7}, {Vendor::extreme, 0.3}, {Vendor::fortinet, 0.4},
        {Vendor::adva, 0.2}, {Vendor::dlink, 1}, {Vendor::zte, 2.6},
        {Vendor::ruijie, 0.5},
    }};
    static const std::array<MarketShare, 16> kAf{{
        {Vendor::cisco, 55}, {Vendor::juniper, 5}, {Vendor::huawei, 24},
        {Vendor::mikrotik, 9}, {Vendor::nokia, 1}, {Vendor::brocade, 0.3},
        {Vendor::net_snmp, 1.5}, {Vendor::arista, 0.2}, {Vendor::h3c, 0.8},
        {Vendor::ericsson, 0.6}, {Vendor::extreme, 0.2}, {Vendor::fortinet, 0.4},
        {Vendor::adva, 0.1}, {Vendor::dlink, 0.4}, {Vendor::zte, 1.2},
        {Vendor::ruijie, 0.3},
    }};
    static const std::array<MarketShare, 16> kOc{{
        {Vendor::cisco, 74}, {Vendor::juniper, 12}, {Vendor::huawei, 2.5},
        {Vendor::mikrotik, 5}, {Vendor::nokia, 2}, {Vendor::brocade, 0.6},
        {Vendor::net_snmp, 1.5}, {Vendor::arista, 0.6}, {Vendor::h3c, 0.2},
        {Vendor::ericsson, 0.4}, {Vendor::extreme, 0.3}, {Vendor::fortinet, 0.3},
        {Vendor::adva, 0.1}, {Vendor::dlink, 0.2}, {Vendor::zte, 0.2},
        {Vendor::ruijie, 0.1},
    }};
    switch (continent) {
        case Continent::north_america: return kNa;
        case Continent::europe: return kEu;
        case Continent::asia: return kAsia;
        case Continent::south_america: return kSa;
        case Continent::africa: return kAf;
        case Continent::oceania: return kOc;
    }
    return kNa;
}

/// Tier bias over the regional market: transit cores buy carrier-grade gear
/// (Cisco/Juniper/Huawei/Nokia/Ericsson); MikroTik, generic Linux and
/// CPE-grade vendors live at the edge.
double tier_weight_factor(Vendor vendor, AsTier tier) {
    if (tier == AsTier::stub) return 1.0;
    switch (vendor) {
        case Vendor::mikrotik: return 0.12;
        case Vendor::net_snmp: return 0.08;
        case Vendor::dlink: return 0.05;
        case Vendor::fortinet: return 0.3;
        case Vendor::arista: return 0.6;
        case Vendor::h3c: return 0.6;
        case Vendor::ruijie: return 0.5;
        case Vendor::adva: return 0.5;
        case Vendor::nokia: return tier == AsTier::tier1 ? 2.5 : 1.8;
        case Vendor::ericsson: return 2.0;
        case Vendor::juniper: return 1.15;
        default: return 1.0;
    }
}

Vendor draw_vendor(Continent continent, AsTier tier, util::Rng& rng) {
    const auto market = market_for(continent);
    std::vector<double> weights(market.size());
    for (std::size_t i = 0; i < market.size(); ++i) {
        weights[i] = market[i].weight * tier_weight_factor(market[i].vendor, tier);
    }
    return market[rng.weighted(weights)].vendor;
}

const stack::StackProfile& draw_profile(Vendor vendor, util::Rng& rng) {
    const auto profiles = stack::standard_catalog().profiles_for(vendor);
    std::vector<double> weights(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) weights[i] = profiles[i].weight;
    return profiles[rng.weighted(weights)].profile;
}

/// Sequentially allocates routable unicast addresses.
class AddressAllocator {
  public:
    net::IPv4Address next() {
        for (;;) {
            net::IPv4Address candidate(cursor_);
            ++cursor_;
            // Leave gaps at /24 boundaries so blocks look realistic.
            if ((cursor_ & 0xFF) == 0xFF) cursor_ += 2;
            if (candidate.is_routable()) return candidate;
        }
    }

  private:
    std::uint32_t cursor_ = net::IPv4Address::from_octets(5, 1, 0, 1).value();
};

}  // namespace

Topology Topology::build(const TopologyConfig& config) {
    Topology topo;
    topo.config_ = config;
    util::Rng rng(config.seed);
    AddressAllocator allocator;

    // ---- AS skeleton -------------------------------------------------------
    const std::size_t tier1_count = std::min(config.tier1_count, config.num_ases);
    const std::size_t transit_count = static_cast<std::size_t>(
        static_cast<double>(config.num_ases) * config.transit_fraction);
    std::vector<std::uint32_t> tier1s;
    std::vector<std::uint32_t> transits;
    std::vector<std::uint32_t> stubs;

    for (std::size_t i = 0; i < config.num_ases; ++i) {
        AsTier tier = AsTier::stub;
        if (i < tier1_count) {
            tier = AsTier::tier1;
        } else if (i < tier1_count + transit_count) {
            tier = AsTier::transit;
        }
        const std::uint32_t asn = topo.graph_.add_as(tier);
        topo.geo_.assign(asn, GeoRegistry::draw_country(rng));
        switch (tier) {
            case AsTier::tier1: tier1s.push_back(asn); break;
            case AsTier::transit: transits.push_back(asn); break;
            case AsTier::stub: stubs.push_back(asn); break;
        }
    }

    // Tier-1 full peer mesh.
    for (std::size_t i = 0; i < tier1s.size(); ++i) {
        for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
            topo.graph_.add_peering(tier1s[i], tier1s[j]);
        }
    }
    // Transit ASes: 1-2 providers among tier1s (or earlier transits), plus
    // same-continent peering.
    for (std::size_t i = 0; i < transits.size(); ++i) {
        const std::uint32_t asn = transits[i];
        const std::size_t provider_count = 1 + rng.below(2);
        for (std::size_t k = 0; k < provider_count; ++k) {
            std::uint32_t provider;
            if (i > 4 && rng.chance(0.35)) {
                provider = transits[rng.below(i)];  // transit buying from transit
            } else {
                provider = tier1s[rng.below(tier1s.size())];
            }
            if (provider != asn) topo.graph_.add_provider_customer(provider, asn);
        }
        const std::size_t peer_count = rng.below(3);
        for (std::size_t k = 0; k < peer_count && i > 0; ++k) {
            const std::uint32_t peer = transits[rng.below(i)];
            const GeoInfo* a = topo.geo_.lookup(asn);
            const GeoInfo* b = topo.geo_.lookup(peer);
            if (peer != asn && a != nullptr && b != nullptr && a->continent == b->continent) {
                topo.graph_.add_peering(asn, peer);
            }
        }
    }
    // Stubs: 1-3 providers, preferring same-continent transit providers.
    for (std::uint32_t asn : stubs) {
        const GeoInfo* geo = topo.geo_.lookup(asn);
        const std::size_t provider_count = 1 + rng.below(3);
        std::size_t attached = 0;
        for (std::size_t attempt = 0; attempt < 24 && attached < provider_count; ++attempt) {
            const std::uint32_t candidate = transits[rng.below(transits.size())];
            const GeoInfo* cgeo = topo.geo_.lookup(candidate);
            const bool same_continent =
                geo != nullptr && cgeo != nullptr && geo->continent == cgeo->continent;
            if (!same_continent && !rng.chance(0.15)) continue;
            topo.graph_.add_provider_customer(candidate, asn);
            ++attached;
        }
        if (attached == 0) {
            topo.graph_.add_provider_customer(tier1s[rng.below(tier1s.size())], asn);
        }
    }

    // ---- Routers -----------------------------------------------------------
    std::uint64_t next_router_id = 1;
    for (const AsNode& as_node : topo.graph_.nodes()) {
        const GeoInfo* geo = topo.geo_.lookup(as_node.asn);
        const Continent continent =
            geo != nullptr ? geo->continent : Continent::north_america;
        util::Rng as_rng = rng.fork(as_node.asn);

        // Router count: heavy-tailed by tier.
        const double u = as_rng.uniform();
        std::size_t router_count = 0;
        switch (as_node.tier) {
            case AsTier::tier1:
                router_count = static_cast<std::size_t>((150 + 650 * u * u) * config.scale);
                break;
            case AsTier::transit:
                router_count = static_cast<std::size_t>((20 + 180 * u * u * u) * config.scale);
                break;
            case AsTier::stub:
                router_count =
                    static_cast<std::size_t>((1 + 24 * u * u * u * u) * config.scale);
                break;
        }
        router_count = std::max<std::size_t>(router_count, 1);

        // Vendor mix: a primary vendor plus size-dependent secondaries.
        const Vendor primary = draw_vendor(continent, as_node.tier, as_rng);
        std::vector<Vendor> secondaries;
        double primary_share = 1.0;
        const bool single_vendor = router_count < 5 || as_rng.chance(0.45);
        if (!single_vendor) {
            const std::size_t extra =
                1 + as_rng.below(router_count > 100 ? 3 : (router_count > 20 ? 2 : 1));
            for (std::size_t i = 0; i < extra; ++i) {
                const Vendor v = draw_vendor(continent, as_node.tier, as_rng);
                if (v != primary) secondaries.push_back(v);
            }
            primary_share = secondaries.empty() ? 1.0 : 0.62 + 0.3 * as_rng.uniform();
        }

        // Networks standardise on few OS families: pick per-vendor preferred
        // profiles once per AS.
        std::unordered_map<int, const stack::StackProfile*> preferred;
        auto profile_for = [&](Vendor v) -> const stack::StackProfile& {
            auto [it, inserted] = preferred.try_emplace(static_cast<int>(v), nullptr);
            if (inserted || as_rng.chance(0.18)) {
                it->second = &draw_profile(v, as_rng);
            }
            return *it->second;
        };

        // Security posture: most networks leave defaults; some filter hard.
        // Backbone cores are far more locked down than edge networks (the
        // paper's Appendix A finds coverage dropping in 1000+-router
        // networks, and only ~35% of paths carry an SNMPv3-identifiable
        // hop) — so the tier multiplies the posture down.
        double posture = 1.0;
        const double posture_draw = as_rng.uniform();
        if (posture_draw > 0.9) {
            posture = 0.18;
        } else if (posture_draw > 0.7) {
            posture = 0.62;
        }
        double snmp_posture = posture;
        switch (as_node.tier) {
            case AsTier::tier1:
                posture *= 0.55;
                snmp_posture *= 0.08;
                break;
            case AsTier::transit:
                posture *= 0.88;
                snmp_posture *= 0.35;
                break;
            case AsTier::stub: break;
        }

        auto& as_list = topo.as_routers_[as_node.asn];
        for (std::size_t r = 0; r < router_count; ++r) {
            const Vendor vendor = (secondaries.empty() || as_rng.chance(primary_share))
                                      ? primary
                                      : secondaries[as_rng.below(secondaries.size())];
            const stack::StackProfile& profile = profile_for(vendor);
            auto router = std::make_unique<stack::SimulatedRouter>(next_router_id++, profile,
                                                                   as_rng, posture,
                                                                   snmp_posture);
            // Interface count: core boxes have more visible interfaces.
            const std::size_t interface_count =
                as_node.tier == AsTier::stub
                    ? 1 + as_rng.below(3)
                    : 2 + as_rng.below(5);
            for (std::size_t i = 0; i < interface_count; ++i) {
                router->add_interface(allocator.next());
            }
            RouterSlot slot;
            slot.router = std::move(router);
            slot.asn = as_node.asn;
            slot.distance = 5 + static_cast<int>(as_rng.below(20));
            const std::size_t index = topo.routers_.size();
            for (net::IPv4Address addr : slot.router->interfaces()) {
                topo.interface_index_[addr] = index;
            }
            topo.interface_total_ += slot.router->interfaces().size();
            as_list.push_back(index);
            topo.routers_.push_back(std::move(slot));
        }

        // Interface churn: addresses in this AS's space that appeared in
        // older traceroutes but are no longer bound to hardware. Sized so
        // RIPE-like snapshots end up ≈70% responsive (paper Table 3).
        const std::size_t phantom_count = 1 + router_count / 2;
        for (std::size_t i = 0; i < phantom_count; ++i) {
            topo.phantoms_.push_back(allocator.next());
        }
    }
    return topo;
}

std::size_t Topology::find_by_interface(net::IPv4Address address) const {
    auto it = interface_index_.find(address);
    return it == interface_index_.end() ? npos : it->second;
}

const std::vector<std::size_t>& Topology::routers_in_as(std::uint32_t asn) const {
    static const std::vector<std::size_t> kEmpty;
    auto it = as_routers_.find(asn);
    return it == as_routers_.end() ? kEmpty : it->second;
}

}  // namespace lfp::sim
