// Registry-based geolocation: AS → country/continent.
//
// The paper geolocates endpoints by address-registry country (not active
// geolocation), because routing policy follows the provider's home registry;
// we model exactly that mapping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace lfp::sim {

enum class Continent : std::uint8_t {
    north_america,
    south_america,
    europe,
    asia,
    africa,
    oceania,
};

constexpr std::size_t kContinentCount = 6;

[[nodiscard]] std::string_view to_string(Continent continent) noexcept;
[[nodiscard]] std::string_view continent_code(Continent continent) noexcept;  // "NA", "EU", ...

struct GeoInfo {
    std::string country;  ///< ISO 3166-1 alpha-2, e.g. "US"
    Continent continent = Continent::north_america;
};

/// Maps AS numbers to registry countries. Populated by the topology builder.
class GeoRegistry {
  public:
    void assign(std::uint32_t asn, GeoInfo info);

    [[nodiscard]] const GeoInfo* lookup(std::uint32_t asn) const;
    [[nodiscard]] bool is_in_country(std::uint32_t asn, std::string_view country) const;

    /// Draws a country according to the study's registry distribution
    /// (US-heavy, then EU/Asia). Used by the topology builder.
    static GeoInfo draw_country(util::Rng& rng);

  private:
    std::unordered_map<std::uint32_t, GeoInfo> by_asn_;
};

}  // namespace lfp::sim
