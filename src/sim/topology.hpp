// Topology builder: instantiates the simulated Internet — an AS graph with
// registry geolocation, per-AS vendor mixes drawn from regional market
// shares, routers with interface IPs, and per-AS security postures.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/as_graph.hpp"
#include "sim/geo.hpp"
#include "stack/profile_catalog.hpp"
#include "stack/simulated_router.hpp"

namespace lfp::sim {

struct TopologyConfig {
    std::uint64_t seed = 20231024;
    std::size_t num_ases = 3000;
    std::size_t tier1_count = 12;
    double transit_fraction = 0.18;
    /// Multiplies per-AS router counts; 1.0 ≈ 1:8 of the paper's world.
    double scale = 1.0;
};

/// Ownership record binding a router to its AS.
struct RouterSlot {
    std::unique_ptr<stack::SimulatedRouter> router;
    std::uint32_t asn = 0;
    /// Hop distance from the measurement vantage point; responses lose this
    /// many TTL units before reaching the prober.
    int distance = 10;
};

class Topology {
  public:
    static Topology build(const TopologyConfig& config);

    [[nodiscard]] const TopologyConfig& config() const noexcept { return config_; }
    [[nodiscard]] const AsGraph& graph() const noexcept { return graph_; }
    [[nodiscard]] const GeoRegistry& geo() const noexcept { return geo_; }

    [[nodiscard]] std::size_t router_count() const noexcept { return routers_.size(); }
    [[nodiscard]] const RouterSlot& slot(std::size_t index) const { return routers_[index]; }
    [[nodiscard]] stack::SimulatedRouter& router(std::size_t index) {
        return *routers_[index].router;
    }
    [[nodiscard]] const stack::SimulatedRouter& router(std::size_t index) const {
        return *routers_[index].router;
    }

    /// Index of the router owning `address`, or npos.
    [[nodiscard]] std::size_t find_by_interface(net::IPv4Address address) const;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    [[nodiscard]] const std::vector<std::size_t>& routers_in_as(std::uint32_t asn) const;
    [[nodiscard]] std::uint32_t asn_of(std::size_t router_index) const {
        return routers_[router_index].asn;
    }
    [[nodiscard]] int distance_of(std::size_t router_index) const {
        return routers_[router_index].distance;
    }

    /// Addresses reserved in an AS's block but no longer bound to any router
    /// (interface churn); traceroute snapshots may still list them.
    [[nodiscard]] const std::vector<net::IPv4Address>& phantom_addresses() const noexcept {
        return phantoms_;
    }

    [[nodiscard]] std::size_t interface_count() const noexcept { return interface_total_; }

  private:
    TopologyConfig config_;
    AsGraph graph_;
    GeoRegistry geo_;
    std::vector<RouterSlot> routers_;
    std::unordered_map<net::IPv4Address, std::size_t> interface_index_;
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> as_routers_;
    std::vector<net::IPv4Address> phantoms_;
    std::size_t interface_total_ = 0;
};

}  // namespace lfp::sim
