// Internet-scale simulated world for memory/throughput benchmarking.
//
// sim::Topology/sim::Internet model every router as a stateful object —
// perfect for fidelity studies, hopeless for a 10M-target memory benchmark
// where the *world* would dwarf the engine under test. ScaleTransport is
// the complement: a stateless transport whose per-target behaviour (which
// protocols answer, stack profile, IPID trajectory, SNMPv3 engine identity,
// per-packet loss) is a pure hash of the target address and the seed.
// Nothing is stored per target, so the transport's memory footprint is O(1)
// no matter how many addresses a census sweeps, and the bytes-per-target
// the bench reports belong entirely to the census engine.
//
// Determinism is total and replay-stable: the same (seed, target, request
// IPID) always produces the same response bytes, so spill-to-disk runs are
// byte-identical to in-memory runs, and windowed runs to serial ones. Loss
// is keyed on the request IPID, which the multi-pass scheduler shifts per
// pass (CensusPlan::kPassIpidStride) — retry passes draw fresh loss fates
// against identical response content, exactly the regime the
// strictly-improving merge is built for.
//
// Response recipes mirror stack::SimulatedRouter (echo replies, closed-port
// RSTs with the profile's sequence-number choice, ICMP port-unreachable
// errors with the profile's quote limit, SNMPv3 discovery responses), so
// the records a scale run produces walk the same feature-extraction and
// classification paths as the fidelity sim — only the per-instance draws
// are hash-derived instead of RNG-stream-derived.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.hpp"
#include "net/packet_builder.hpp"
#include "probe/transport.hpp"
#include "stack/profile_catalog.hpp"

namespace lfp::sim {

struct ScaleWorldConfig {
    std::uint64_t seed = 1;
    /// Fraction of addresses that exist at all; the rest ignore everything
    /// (the census hitlist regime: most of a raw sweep is dark).
    double responsive_fraction = 0.65;
    /// Deterministic per-packet loss, keyed on (seed, target, request
    /// IPID): a lost probe never answers, and the same probe re-sent with
    /// the same IPID is lost again — but a retry pass shifts IPIDs, so it
    /// draws a fresh fate.
    double loss_rate = 0.0;
    net::IPv4Address vantage = net::IPv4Address(0x0A000001);  // 10.0.0.1
};

/// Stateless transport over the hash-derived world. Synchronous (responses
/// queue at send time) and single-owner like every SynchronousTransport.
class ScaleTransport final : public probe::SynchronousTransport {
  public:
    explicit ScaleTransport(ScaleWorldConfig config = {});

    [[nodiscard]] net::IPv4Address vantage_address() const override { return config_.vantage; }

    [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_seen_; }
    [[nodiscard]] std::uint64_t packets_lost() const noexcept { return packets_lost_; }

    /// The persona a target hashes to — exposed so tests can compute the
    /// expected outcome of a probe without replaying the transport.
    struct Persona {
        const stack::StackProfile* profile = nullptr;
        bool exists = false;
        bool responds_icmp = false;
        bool responds_tcp = false;
        bool responds_udp = false;
        bool snmp_enabled = false;
        std::uint64_t entropy = 0;  ///< per-target hash driving the draws
    };
    [[nodiscard]] Persona persona_for(net::IPv4Address target) const;

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override;

  private:
    std::optional<net::Bytes> respond_icmp(const Persona& persona,
                                           const net::ParsedPacket& probe);
    std::optional<net::Bytes> respond_tcp(const Persona& persona,
                                          const net::ParsedPacket& probe);
    std::optional<net::Bytes> respond_udp(const Persona& persona,
                                          const net::ParsedPacket& probe,
                                          std::span<const std::uint8_t> raw);
    std::optional<net::Bytes> respond_snmp(const Persona& persona,
                                           const net::ParsedPacket& probe);

    /// IPID for this persona's next response on `protocol`, given that the
    /// response answers probe round `round` — a pure function, replayed
    /// identically on every pass (see the file comment).
    [[nodiscard]] std::uint16_t response_ipid(const Persona& persona, std::size_t protocol,
                                              std::size_t round) const;

    ScaleWorldConfig config_;
    /// Weighted profile pick table (indices into the standard catalog),
    /// built once; persona profile = table[hash % size].
    std::vector<const stack::StackProfile*> pick_table_;
    std::uint64_t packets_seen_ = 0;
    std::uint64_t packets_lost_ = 0;
};

}  // namespace lfp::sim
