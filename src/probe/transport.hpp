// Probe transport abstraction: the campaign logic is transport-agnostic so
// the identical pipeline runs against the simulated Internet (SimTransport)
// or live targets via raw sockets (RawSocketTransport).
//
// The contract is batched and asynchronous: send_batch() queues raw packets
// onto the wire in order without waiting for anything, poll_responses()
// collects whatever raw inbound packets have arrived. Correlating inbound
// packets back to outstanding probes is the caller's job (see
// probe/demux.hpp); a blocking one-packet transact() convenience is layered
// on top for callers that genuinely want request/response semantics
// (baselines, alias resolution).
//
// Threading contract: the streaming campaign engine runs send_batch() on a
// scheduler thread and poll_responses()/drained() on a dedicated receive
// thread, concurrently. Implementations must tolerate exactly that split —
// one sender thread, one receiver thread — without external locking.
// Concurrent calls to send_batch() from several threads (or to
// poll_responses() from several threads) remain outside the contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.hpp"
#include "net/packet_builder.hpp"

namespace lfp::probe {

class ProbeTransport {
  public:
    virtual ~ProbeTransport() = default;

    ProbeTransport() = default;
    ProbeTransport(const ProbeTransport&) = delete;
    ProbeTransport& operator=(const ProbeTransport&) = delete;

    /// Sends a batch of raw IPv4 packets in order. The wire order of a batch
    /// is the span order; consecutive batches preserve submission order. The
    /// call never waits for responses. May run concurrently with
    /// poll_responses()/drained() on another thread (see the threading
    /// contract above).
    virtual void send_batch(std::span<const net::Bytes> packets) = 0;

    /// Returns raw inbound packets. Blocks up to `timeout` when none are
    /// immediately available; may return early (possibly empty) when the
    /// transport can prove nothing is pending (see drained()). May run
    /// concurrently with send_batch() on another thread.
    virtual std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) = 0;

    /// True when the transport can prove no further response will arrive for
    /// anything sent so far. Transports that cannot know (live networks)
    /// return false and callers fall back to deadlines. Safe to call from
    /// the receive thread concurrently with send_batch().
    [[nodiscard]] virtual bool drained() const { return false; }

    /// The source address probes should carry.
    [[nodiscard]] virtual net::IPv4Address vantage_address() const = 0;

    /// Optional backend-identity hint: an opaque key such that two targets
    /// with equal keys share stateful backend state (the same physical
    /// router behind alias interfaces). The simulation knows its ground
    /// truth and reports router indices; live transports return nullopt.
    /// CensusRunner uses the hint to default-group alias interfaces onto
    /// one vantage lane so their probes stay serialized.
    [[nodiscard]] virtual std::optional<std::uint64_t> backend_hint(
        net::IPv4Address /*target*/) const {
        return std::nullopt;
    }

    /// Default deadline for the transact() convenience.
    [[nodiscard]] virtual std::chrono::milliseconds transact_timeout() const {
        return std::chrono::milliseconds(1000);
    }

    /// Sends one raw IPv4 packet and waits for the flow-matching response
    /// (ICMP id/seq, TCP/UDP port pair, or an ICMP error quoting the probe).
    /// Returns the raw response packet, or nullopt on timeout/filtering.
    /// Non-matching inbound packets received while waiting are dropped.
    std::optional<net::Bytes> transact(std::span<const std::uint8_t> packet);
};

/// Adapter for transports that can answer a packet synchronously (test
/// doubles, single-router harnesses): implement exchange() and the batch
/// contract falls out — responses are queued at send time and handed back by
/// poll_responses() in send order. The internal queue is mutex-guarded, so
/// the adapter satisfies the one-sender/one-receiver threading contract;
/// exchange() itself only ever runs on the sending thread.
class SynchronousTransport : public ProbeTransport {
  public:
    void send_batch(std::span<const net::Bytes> packets) override {
        for (const net::Bytes& packet : packets) {
            auto response = exchange(packet);
            if (response) {
                std::lock_guard<std::mutex> lock(mutex_);
                queue_.push_back(std::move(*response));
            }
        }
    }

    /// The `timeout` parameter is deliberately unused — and that is the
    /// documented contract, not an oversight: every response this adapter
    /// will ever hold is queued synchronously at send_batch() time, so an
    /// empty queue means drained() — nothing further can arrive until the
    /// next send — and the base-class contract explicitly allows a drained
    /// transport to return early. Blocking here would add latency and
    /// starve nobody of anything; the zero-cost early return is correct.
    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds /*timeout*/) override {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<net::Bytes> out;
        out.swap(queue_);
        return out;
    }

    [[nodiscard]] bool drained() const override {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.empty();
    }

  protected:
    /// One request/response round trip; nullopt models loss or filtering.
    virtual std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) = 0;

  private:
    mutable std::mutex mutex_;
    std::vector<net::Bytes> queue_;
};

}  // namespace lfp::probe
