// Probe transport abstraction: the campaign logic is transport-agnostic so
// the identical pipeline runs against the simulated Internet (SimTransport)
// or live targets via raw sockets (RawSocketTransport).
//
// The contract is batched and asynchronous: send_batch() queues raw packets
// onto the wire in order without waiting for anything, poll_responses()
// collects whatever raw inbound packets have arrived. Correlating inbound
// packets back to outstanding probes is the caller's job (see
// probe/demux.hpp); a blocking one-packet transact() convenience is layered
// on top for callers that genuinely want request/response semantics
// (baselines, alias resolution).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.hpp"
#include "net/packet_builder.hpp"

namespace lfp::probe {

class ProbeTransport {
  public:
    virtual ~ProbeTransport() = default;

    ProbeTransport() = default;
    ProbeTransport(const ProbeTransport&) = delete;
    ProbeTransport& operator=(const ProbeTransport&) = delete;

    /// Sends a batch of raw IPv4 packets in order. The wire order of a batch
    /// is the span order; consecutive batches preserve submission order. The
    /// call never waits for responses.
    virtual void send_batch(std::span<const net::Bytes> packets) = 0;

    /// Returns raw inbound packets. Blocks up to `timeout` when none are
    /// immediately available; may return early (possibly empty) when the
    /// transport can prove nothing is pending (see drained()).
    virtual std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) = 0;

    /// True when the transport can prove no further response will arrive for
    /// anything sent so far. Transports that cannot know (live networks)
    /// return false and callers fall back to deadlines.
    [[nodiscard]] virtual bool drained() const { return false; }

    /// The source address probes should carry.
    [[nodiscard]] virtual net::IPv4Address vantage_address() const = 0;

    /// Default deadline for the transact() convenience.
    [[nodiscard]] virtual std::chrono::milliseconds transact_timeout() const {
        return std::chrono::milliseconds(1000);
    }

    /// Sends one raw IPv4 packet and waits for the flow-matching response
    /// (ICMP id/seq, TCP/UDP port pair, or an ICMP error quoting the probe).
    /// Returns the raw response packet, or nullopt on timeout/filtering.
    /// Non-matching inbound packets received while waiting are dropped.
    std::optional<net::Bytes> transact(std::span<const std::uint8_t> packet);
};

/// Adapter for transports that can answer a packet synchronously (test
/// doubles, single-router harnesses): implement exchange() and the batch
/// contract falls out — responses are queued at send time and handed back by
/// poll_responses() in send order.
class SynchronousTransport : public ProbeTransport {
  public:
    void send_batch(std::span<const net::Bytes> packets) override {
        for (const net::Bytes& packet : packets) {
            auto response = exchange(packet);
            if (response) queue_.push_back(std::move(*response));
        }
    }

    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds /*timeout*/) override {
        std::vector<net::Bytes> out;
        out.swap(queue_);
        return out;
    }

    [[nodiscard]] bool drained() const override { return queue_.empty(); }

  protected:
    /// One request/response round trip; nullopt models loss or filtering.
    virtual std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) = 0;

  private:
    std::vector<net::Bytes> queue_;
};

}  // namespace lfp::probe
