/// \file
/// Probe transport abstraction: the campaign logic is transport-agnostic so
/// the identical pipeline runs against the simulated Internet (SimTransport)
/// or live targets via raw sockets (RawSocketTransport).
///
/// The contract is batched and asynchronous: send_batch() queues raw packets
/// onto the wire in order without waiting for anything, poll_responses()
/// collects whatever raw inbound packets have arrived. Correlating inbound
/// packets back to outstanding probes is the caller's job (see
/// probe/demux.hpp); a blocking one-packet transact() convenience is layered
/// on top for callers that genuinely want request/response semantics
/// (baselines, alias resolution).
///
/// \par The threading contract (one sender, one receiver)
/// The streaming campaign engine (probe/campaign.cpp) drives every
/// transport from exactly two threads, concurrently:
///   - a **scheduler/sender thread** calling send_batch(), and
///   - a **dedicated receive thread** calling poll_responses() and
///     drained() in a loop.
/// An implementation must tolerate exactly that split — one concurrent
/// sender, one concurrent receiver — without the caller adding locks.
/// Nothing more: concurrent send_batch() calls from several threads, or
/// concurrent poll_responses() calls from several threads, are *outside*
/// the contract and need not be supported. vantage_address() and
/// backend_hint() are read-only queries and may be called from any thread
/// at any time (the census runner calls backend_hint() while lanes run).
///
/// \par What a live-transport implementer must provide
///   1. send_batch() that preserves order (span order within a batch,
///      submission order across batches) and never blocks on responses.
///   2. poll_responses() that waits at most `timeout` and is safely
///      concurrent with send_batch() — a raw-socket recv loop typically
///      needs no shared state with the send path beyond the socket itself.
///   3. drained() — return false unless the transport can *prove* silence
///      (live networks cannot; see the method docs for what a true return
///      promises and how the engine uses it).
///   4. vantage_address() — the source address probes are stamped with.
///   5. Optionally backend_hint() where ground truth about target/backend
///      affinity exists; return std::nullopt otherwise.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.hpp"
#include "net/packet_builder.hpp"

namespace lfp::probe {

class ProbeTransport {
  public:
    virtual ~ProbeTransport() = default;

    ProbeTransport() = default;
    ProbeTransport(const ProbeTransport&) = delete;
    ProbeTransport& operator=(const ProbeTransport&) = delete;

    /// Sends a batch of raw IPv4 packets in order.
    ///
    /// \param packets Fully serialized IPv4 packets; the transport puts
    ///   them on the wire verbatim (the engine has already stamped IPIDs,
    ///   ports, and checksums).
    ///
    /// \par Contract
    ///   - The wire order of a batch is the span order; consecutive
    ///     batches preserve submission order. The probe engine's
    ///     cross-protocol IPID features depend on this.
    ///   - The call never waits for responses (it may block briefly on
    ///     socket buffers, not on the network's answers).
    ///   - Called only from the sender thread, but concurrently with
    ///     poll_responses()/drained() on the receive thread (see the
    ///     threading contract in the file header).
    virtual void send_batch(std::span<const net::Bytes> packets) = 0;

    /// Returns raw inbound packets, in arrival order.
    ///
    /// \param timeout Upper bound on how long to wait when nothing is
    ///   immediately available. Two early-return exceptions are part of
    ///   the contract:
    ///   - packets arrived: return them immediately, don't wait out the
    ///     remainder;
    ///   - the transport is drained() (provably nothing pending): an
    ///     immediate — possibly empty — return is correct and costs the
    ///     caller nothing (the engine's receive loop handles pacing; see
    ///     SynchronousTransport::poll_responses for the canonical case).
    ///
    /// \returns Whole raw packets exactly as read off the wire; the engine
    ///   parses and demultiplexes them. Non-probe traffic may be included —
    ///   the demux counts unmatched packets as strays.
    ///
    /// \par Contract
    ///   Called only from the receive thread, concurrently with
    ///   send_batch() on the sender thread. Must not drop inbound packets
    ///   between consecutive calls (buffer internally if the OS hands over
    ///   more than one poll's worth).
    virtual std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) = 0;

    /// Allocation-free variant of poll_responses(): appends inbound packets
    /// to `out` instead of returning a fresh vector, so a receive loop that
    /// reuses one scratch vector (and recycles consumed buffers — see
    /// recycle()) runs with zero steady-state heap traffic. Same contract
    /// as poll_responses() otherwise: receive thread only, arrival order,
    /// early return when packets arrive or the transport is drained. The
    /// default forwards to poll_responses() so existing transports keep
    /// working unchanged; transports with a pooled receive path
    /// (RawSocketTransport) override it.
    virtual void poll_responses_into(std::chrono::milliseconds timeout,
                                     std::vector<net::Bytes>& out) {
        auto inbound = poll_responses(timeout);
        for (net::Bytes& packet : inbound) out.push_back(std::move(packet));
    }

    /// Returns a packet buffer obtained from poll_responses*() to the
    /// transport for reuse once the caller is done with it (stray traffic,
    /// rate-limit advisories, parsed-and-discarded payloads). Purely an
    /// optimisation: the default drops the buffer, which is always correct.
    /// May be called from the sender/scheduler thread concurrently with the
    /// receive thread — implementations route buffers across that boundary
    /// themselves (RawSocketTransport uses an SPSC ring into its pool).
    virtual void recycle(net::Bytes&& /*buffer*/) {}

    /// True when the transport can *prove* no further response will arrive
    /// for anything sent so far — "the pipe is empty", not "nothing right
    /// now".
    ///
    /// \par What a true return promises
    ///   Every response that any packet sent *before this call* will ever
    ///   produce has already been returned by poll_responses(). The engine
    ///   uses this proof to fail outstanding probe slots immediately
    ///   instead of parking them for the full response timeout — the
    ///   difference between simulation-speed and live-speed timeout
    ///   handling. A false positive silently truncates measurements;
    ///   a false negative merely costs waiting, so **when in doubt,
    ///   return false**.
    ///
    /// \par Live transports
    ///   A live network can never prove silence, so the default returns
    ///   false and callers fall back to deadlines. Simulated transports
    ///   (and queue-at-send adapters like SynchronousTransport) know their
    ///   pending state exactly.
    ///
    /// \par Races with in-flight sends
    ///   The engine tolerates the inherent race — a send may land between
    ///   the receiver's poll and its drained() call — by re-validating the
    ///   observation against a send epoch (see ReceiveLoop in
    ///   campaign.cpp). The implementation only answers for packets whose
    ///   send_batch() call completed before drained() began; it is never
    ///   required to predict concurrent sends.
    ///
    /// \par Contract
    ///   Called from the receive thread, concurrently with send_batch().
    [[nodiscard]] virtual bool drained() const { return false; }

    /// The source address probes should carry — one address per transport;
    /// multi-homed deployments use one transport per vantage. Read-only,
    /// callable from any thread.
    [[nodiscard]] virtual net::IPv4Address vantage_address() const = 0;

    /// Optional backend-identity hint: an opaque key such that two targets
    /// with equal keys share stateful backend state (the same physical
    /// router behind alias interfaces).
    ///
    /// \returns A key equal for targets sharing backend state, or
    ///   std::nullopt when the transport knows nothing about `target`.
    ///   Key *values* carry no meaning beyond equality.
    ///
    /// \par Why it exists
    ///   CensusRunner default-groups targets with equal hints onto one
    ///   vantage lane so a stateful backend sees its probes serialized
    ///   (two lanes probing alias interfaces of one router concurrently
    ///   would race its counters). The simulation reports ground-truth
    ///   router indices; live transports have no ground truth and should
    ///   keep the default nullopt, which degrades to round-robin over
    ///   distinct addresses — callers with external alias knowledge pass
    ///   an explicit assignment instead
    ///   (CensusPlan::assignment_by_affinity()).
    ///
    /// \par Contract
    ///   Read-only and thread-safe: the runner queries it while lanes are
    ///   running.
    [[nodiscard]] virtual std::optional<std::uint64_t> backend_hint(
        net::IPv4Address /*target*/) const {
        return std::nullopt;
    }

    /// Default deadline for the transact() convenience.
    [[nodiscard]] virtual std::chrono::milliseconds transact_timeout() const {
        return std::chrono::milliseconds(1000);
    }

    /// Sends one raw IPv4 packet and waits for the flow-matching response
    /// (ICMP id/seq, TCP/UDP port pair, or an ICMP error quoting the probe).
    /// Returns the raw response packet, or nullopt on timeout/filtering.
    /// Non-matching inbound packets received while waiting are dropped.
    std::optional<net::Bytes> transact(std::span<const std::uint8_t> packet);
};

/// Adapter for transports that can answer a packet synchronously (test
/// doubles, single-router harnesses): implement exchange() and the batch
/// contract falls out — responses are queued at send time and handed back by
/// poll_responses() in send order. The internal queue is mutex-guarded, so
/// the adapter satisfies the one-sender/one-receiver threading contract;
/// exchange() itself only ever runs on the sending thread.
class SynchronousTransport : public ProbeTransport {
  public:
    void send_batch(std::span<const net::Bytes> packets) override {
        for (const net::Bytes& packet : packets) {
            auto response = exchange(packet);
            if (response) {
                std::lock_guard<std::mutex> lock(mutex_);
                queue_.push_back(std::move(*response));
            }
        }
    }

    /// The `timeout` parameter is deliberately unused — and that is the
    /// documented contract, not an oversight: every response this adapter
    /// will ever hold is queued synchronously at send_batch() time, so an
    /// empty queue means drained() — nothing further can arrive until the
    /// next send — and the base-class contract explicitly allows a drained
    /// transport to return early. Blocking here would add latency and
    /// starve nobody of anything; the zero-cost early return is correct.
    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds /*timeout*/) override {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<net::Bytes> out;
        out.swap(queue_);
        return out;
    }

    /// Pooled-path override: drains the queue into the caller's scratch
    /// vector, keeping the queue's capacity for the next send — the steady
    /// state moves buffers without allocating either vector.
    void poll_responses_into(std::chrono::milliseconds /*timeout*/,
                             std::vector<net::Bytes>& out) override {
        std::lock_guard<std::mutex> lock(mutex_);
        for (net::Bytes& packet : queue_) out.push_back(std::move(packet));
        queue_.clear();
    }

    [[nodiscard]] bool drained() const override {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.empty();
    }

  protected:
    /// One request/response round trip; nullopt models loss or filtering.
    virtual std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) = 0;

  private:
    mutable std::mutex mutex_;
    std::vector<net::Bytes> queue_;
};

}  // namespace lfp::probe
