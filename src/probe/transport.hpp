// Probe transport abstraction: the campaign logic is transport-agnostic so
// the identical pipeline runs against the simulated Internet (SimTransport)
// or live targets via raw sockets (RawSocketTransport).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/ip_address.hpp"
#include "net/packet_builder.hpp"

namespace lfp::probe {

class ProbeTransport {
  public:
    virtual ~ProbeTransport() = default;

    ProbeTransport() = default;
    ProbeTransport(const ProbeTransport&) = delete;
    ProbeTransport& operator=(const ProbeTransport&) = delete;

    /// Sends one raw IPv4 packet and waits for the matching response.
    /// Returns the raw response packet, or nullopt on timeout/filtering.
    virtual std::optional<net::Bytes> transact(std::span<const std::uint8_t> packet) = 0;

    /// The source address probes should carry.
    [[nodiscard]] virtual net::IPv4Address vantage_address() const = 0;
};

}  // namespace lfp::probe
