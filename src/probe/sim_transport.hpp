// Transport over the simulated Internet.
#pragma once

#include "probe/transport.hpp"
#include "sim/internet.hpp"

namespace lfp::probe {

class SimTransport final : public ProbeTransport {
  public:
    explicit SimTransport(sim::Internet& internet,
                          net::IPv4Address vantage = net::IPv4Address::from_octets(192, 0, 2, 7))
        : internet_(&internet), vantage_(vantage) {}

    std::optional<net::Bytes> transact(std::span<const std::uint8_t> packet) override {
        return internet_->transact(packet);
    }

    [[nodiscard]] net::IPv4Address vantage_address() const override { return vantage_; }

  private:
    sim::Internet* internet_;
    net::IPv4Address vantage_;
};

}  // namespace lfp::probe
