// Transport over the simulated Internet.
//
// Responses are computed synchronously when a batch is sent (the simulation
// is deterministic in send order), then held until their modeled round-trip
// time elapses. With a non-zero RTT plus jitter, poll_responses() delivers
// packets out of send order — exactly the regime the response demultiplexer
// exists for — and a windowed campaign overlaps many targets' RTTs where a
// serial one pays them back to back.
//
// The pending-response queue is mutex-guarded (never held across a sleep),
// so send_batch() on the scheduler thread and poll_responses()/drained() on
// the dedicated receive thread interleave safely per the ProbeTransport
// threading contract. The jitter RNG and send sequence are only touched on
// the sending thread.
#pragma once

#include <chrono>
#include <mutex>
#include <queue>
#include <vector>

#include "probe/transport.hpp"
#include "sim/internet.hpp"
#include "util/rng.hpp"

namespace lfp::probe {

class SimTransport final : public ProbeTransport {
  public:
    struct Options {
        net::IPv4Address vantage = net::IPv4Address::from_octets(192, 0, 2, 7);
        /// Modeled round-trip latency per probe. Zero = responses are
        /// available on the first poll after the send (fastest, default).
        std::chrono::microseconds rtt{0};
        /// Uniform per-packet jitter as a fraction of rtt in [0, 1): each
        /// response matures at rtt * (1 ± jitter), reordering deliveries.
        double jitter = 0.0;
        std::uint64_t jitter_seed = 0x5EED;
        /// Live-path semantics: drained() always reports false, exactly
        /// like RawSocketTransport on a real network — the engine can then
        /// never prove silence and must wait out its response timeouts.
        /// Default off (the simulation's omniscient fast path); turn on to
        /// model the operational cost of lost/suppressed answers.
        bool live_semantics = false;
    };

    explicit SimTransport(sim::Internet& internet,
                          net::IPv4Address vantage = net::IPv4Address::from_octets(192, 0, 2, 7))
        : SimTransport(internet, Options{.vantage = vantage}) {}
    SimTransport(sim::Internet& internet, Options options)
        : internet_(&internet), options_(options), jitter_rng_(options.jitter_seed) {}

    void send_batch(std::span<const net::Bytes> packets) override;

    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) override;

    [[nodiscard]] bool drained() const override {
        if (options_.live_semantics) return false;
        std::lock_guard<std::mutex> lock(mutex_);
        return pending_.empty();
    }

    [[nodiscard]] net::IPv4Address vantage_address() const override { return options_.vantage; }

    /// The simulation's ground truth: targets backed by the same simulated
    /// router share its index (their probes must stay serialized); addresses
    /// without a backing router are independent and report nullopt.
    [[nodiscard]] std::optional<std::uint64_t> backend_hint(
        net::IPv4Address target) const override;

    [[nodiscard]] std::chrono::milliseconds transact_timeout() const override {
        // Everything that will ever arrive is queued at send time, so the
        // deadline only bounds the wait for modeled latency.
        return std::chrono::duration_cast<std::chrono::milliseconds>(4 * options_.rtt) +
               std::chrono::milliseconds(50);
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending {
        Clock::time_point ready_at;
        std::uint64_t sequence = 0;  ///< tie-break keeps equal-delay FIFO
        net::Bytes packet;

        bool operator>(const Pending& other) const {
            return ready_at != other.ready_at ? ready_at > other.ready_at
                                              : sequence > other.sequence;
        }
    };

    sim::Internet* internet_;
    Options options_;
    util::Rng jitter_rng_;     ///< sending thread only
    std::uint64_t sequence_ = 0;  ///< sending thread only
    mutable std::mutex mutex_;  ///< guards pending_; never held across sleeps
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
};

}  // namespace lfp::probe
