#include "probe/wire.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <thread>

#ifdef __linux__
#include <arpa/inet.h>
#include <net/if.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

// UDP GSO/GRO socket options predate some libc headers; the kernel ABI
// values are stable.
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif
#ifndef SOL_UDP
#define SOL_UDP 17
#endif
#endif  // __linux__

namespace lfp::probe {

namespace {

/// Backoff schedule for transient send errors: start tight (buffer drains
/// are usually microseconds), double each attempt, cap well below the probe
/// timeout so a wedged NIC degrades to a counted failure rather than a
/// stalled scheduler. 8 attempts ≈ 50+100+...+5000µs ≈ 13ms worst case.
constexpr std::chrono::microseconds kSendBackoffInitial{50};
constexpr std::chrono::microseconds kSendBackoffCap{5000};
constexpr int kSendAttempts = 8;

/// Kernel limits on one UDP GSO super-datagram: at most this many segments,
/// and the aggregate payload must fit a single UDP datagram.
constexpr std::size_t kGsoMaxSegments = 64;
constexpr std::size_t kGsoMaxBytes = 60000;

[[maybe_unused]] bool transient_errno(int error) noexcept {
    return error == EAGAIN || error == EWOULDBLOCK || error == ENOBUFS || error == EINTR;
}

}  // namespace

WireConfig WireConfig::from_env() {
    WireConfig config;
    if (const char* backend = std::getenv("LFP_WIRE_BACKEND")) {
        const std::string_view name(backend);
        if (name == "serial") {
            config.mode = WireMode::serial;
        } else if (name == "batched") {
            config.mode = WireMode::batched;
        }
        // Anything else keeps the default: a live run degrades, not dies.
    }
    if (const char* batch = std::getenv("LFP_WIRE_BATCH")) {
        char* end = nullptr;
        const unsigned long long value = std::strtoull(batch, &end, 10);
        if (end != batch && value > 0) config.batch = static_cast<std::size_t>(value);
    }
    return config;
}

std::size_t WireConfig::clamped_batch() const noexcept {
    return std::clamp<std::size_t>(batch, 1, kMaxBatch);
}

bool send_with_retry(const std::function<long()>& attempt, std::uint64_t& transient_errors,
                     std::uint64_t& failures) {
    std::chrono::microseconds backoff = kSendBackoffInitial;
    for (int tries = 0; tries < kSendAttempts; ++tries) {
        if (attempt() >= 0) return true;
        const int error = errno;
        if (!transient_errno(error)) break;  // hard failure: waiting won't help
        ++transient_errors;
        // EINTR needs no delay — the send was interrupted, not refused.
        if (error != EINTR) {
            std::this_thread::sleep_for(backoff);
            backoff = std::min(backoff * 2, kSendBackoffCap);
        }
    }
    ++failures;
    return false;
}

#ifdef __linux__

namespace {

sockaddr_in make_sockaddr(net::IPv4Address address, std::uint16_t port) noexcept {
    sockaddr_in out{};
    out.sin_family = AF_INET;
    out.sin_port = htons(port);
    out.sin_addr.s_addr = htonl(address.value());
    return out;
}

/// Best effort: big socket buffers absorb the bursts batching creates.
void grow_socket_buffers(int fd) noexcept {
    constexpr int kBytes = 4 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kBytes, sizeof(kBytes));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kBytes, sizeof(kBytes));
}

bool bind_device(int fd, const std::string& interface, std::string& status) {
    if (interface.empty()) return true;
    if (::setsockopt(fd, SOL_SOCKET, SO_BINDTODEVICE, interface.c_str(),
                     static_cast<socklen_t>(interface.size())) != 0) {
        status = "SO_BINDTODEVICE(" + interface + ") failed: " + std::strerror(errno);
        return false;
    }
    return true;
}

/// Copies one wire packet out of a pinned slab into a pooled buffer.
void emit_packet(util::BufferPool& pool, std::vector<net::Bytes>& out,
                 const std::uint8_t* data, std::size_t size) {
    net::Bytes buffer = pool.acquire();
    buffer.assign(data, data + size);
    out.push_back(std::move(buffer));
}

}  // namespace

// ---------------------------------------------------------------------------
// DgramWireBackend
// ---------------------------------------------------------------------------

/// Pre-pinned syscall scaffolding: every array the kernel reads or writes
/// during sendmmsg/recvmmsg lives here for the backend's lifetime, so the
/// steady state never allocates or re-registers anything.
struct DgramWireBackend::Pinned {
    static constexpr std::size_t kCtrlBytes = 64;  // room for one cmsg either way
    /// Control buffers must carry cmsghdr alignment — a plain char array
    /// inside a vector would not.
    struct Ctrl {
        alignas(cmsghdr) char bytes[kCtrlBytes];
    };

    // Send side: one iovec per packet, grouped under up to `batch` headers.
    std::vector<mmsghdr> send_hdrs;
    std::vector<iovec> send_iovs;
    std::vector<Ctrl> send_ctrl;
    std::vector<std::uint32_t> group_packets;  ///< packets behind each header

    // Receive side: one slab + iovec + control buffer per header slot.
    std::vector<mmsghdr> recv_hdrs;
    std::vector<iovec> recv_iovs;
    std::vector<Ctrl> recv_ctrl;
    std::vector<std::uint8_t> slabs;  ///< batch * slab_bytes, contiguous
};

DgramWireBackend::DgramWireBackend(WireConfig config) : config_(std::move(config)) {
    const std::string source = config_.source.empty() ? "127.0.0.1" : config_.source;
    auto parsed = net::IPv4Address::parse(source);
    if (!parsed) {
        status_ = "bad source address: " + source;
        return;
    }
    local_ = parsed.value();
    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0) {
        status_ = std::string("socket() failed: ") + std::strerror(errno);
        return;
    }
    if (!bind_device(fd_, config_.interface, status_)) return;
    sockaddr_in addr = make_sockaddr(local_, 0);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        status_ = "bind(" + source + ") failed: " + std::strerror(errno);
        return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        local_port_ = ntohs(addr.sin_port);
    }
    grow_socket_buffers(fd_);

    if (config_.mode == WireMode::batched) {
        // Probe GSO/GRO support once; batched mode silently falls back to
        // plain sendmmsg/recvmmsg where the kernel lacks them.
        const int zero = 0;
        gso_ok_ = ::setsockopt(fd_, SOL_UDP, UDP_SEGMENT, &zero, sizeof(zero)) == 0;
        const int one = 1;
        gro_ok_ = ::setsockopt(fd_, SOL_UDP, UDP_GRO, &one, sizeof(one)) == 0;
    }

    const std::size_t batch = config_.clamped_batch();
    pinned_ = std::make_unique<Pinned>();
    pinned_->send_hdrs.resize(batch);
    pinned_->send_iovs.resize(batch * (gso_ok_ ? kGsoMaxSegments : 1));
    pinned_->send_ctrl.resize(batch);
    pinned_->group_packets.resize(batch);
    pinned_->recv_hdrs.resize(batch);
    pinned_->recv_iovs.resize(batch);
    pinned_->recv_ctrl.resize(batch);
    pinned_->slabs.resize(batch * config_.slab_bytes);
    for (std::size_t i = 0; i < batch; ++i) {
        iovec& iov = pinned_->recv_iovs[i];
        iov.iov_base = pinned_->slabs.data() + i * config_.slab_bytes;
        iov.iov_len = config_.slab_bytes;
        msghdr& msg = pinned_->recv_hdrs[i].msg_hdr;
        msg = {};
        msg.msg_iov = &iov;
        msg.msg_iovlen = 1;
        msg.msg_control = pinned_->recv_ctrl[i].bytes;
        msg.msg_controllen = Pinned::kCtrlBytes;
    }

    ready_ = true;
    status_ = "ready";
}

DgramWireBackend::~DgramWireBackend() {
    if (fd_ >= 0) ::close(fd_);
}

bool DgramWireBackend::set_peer(net::IPv4Address address, std::uint16_t port) {
    if (!ready_) return false;
    const sockaddr_in peer = make_sockaddr(address, port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&peer), sizeof(peer)) != 0) {
        status_ = std::string("connect() failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

void DgramWireBackend::send(std::span<const net::Bytes> packets) {
    if (!ready_) return;
    if (config_.mode == WireMode::serial) {
        send_serial(packets);
    } else {
        send_batched(packets);
    }
}

void DgramWireBackend::send_serial(std::span<const net::Bytes> packets) {
    for (const net::Bytes& packet : packets) {
        const bool delivered = send_with_retry(
            [&] {
                ++counters_.send_syscalls;
                return static_cast<long>(::send(fd_, packet.data(), packet.size(), 0));
            },
            counters_.transient_send_errors, counters_.send_failures);
        if (delivered) ++counters_.packets_sent;
    }
}

void DgramWireBackend::send_batched(std::span<const net::Bytes> packets) {
    Pinned& pin = *pinned_;
    const std::size_t max_groups = pin.send_hdrs.size();
    std::size_t next = 0;
    while (next < packets.size()) {
        // Build up to `batch` headers. With GSO, a header carries a run of
        // consecutive equal-size packets as one super-datagram the kernel
        // segments back on the wire; without it, one packet per header.
        std::size_t groups = 0;
        std::size_t iov_cursor = 0;
        while (groups < max_groups && next < packets.size()) {
            const std::size_t segment_bytes = packets[next].size();
            std::size_t run = 1;
            std::size_t run_bytes = segment_bytes;
            if (gso_ok_) {
                while (next + run < packets.size() && run < kGsoMaxSegments &&
                       packets[next + run].size() == segment_bytes &&
                       run_bytes + segment_bytes <= kGsoMaxBytes) {
                    ++run;
                    run_bytes += segment_bytes;
                }
            }
            mmsghdr& hdr = pin.send_hdrs[groups];
            msghdr& msg = hdr.msg_hdr;
            msg = {};
            msg.msg_iov = &pin.send_iovs[iov_cursor];
            msg.msg_iovlen = run;
            for (std::size_t i = 0; i < run; ++i) {
                pin.send_iovs[iov_cursor + i].iov_base =
                    const_cast<std::uint8_t*>(packets[next + i].data());
                pin.send_iovs[iov_cursor + i].iov_len = packets[next + i].size();
            }
            if (run > 1) {
                msg.msg_control = pin.send_ctrl[groups].bytes;
                msg.msg_controllen = CMSG_SPACE(sizeof(std::uint16_t));
                cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
                cmsg->cmsg_level = SOL_UDP;
                cmsg->cmsg_type = UDP_SEGMENT;
                cmsg->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
                const auto seg = static_cast<std::uint16_t>(segment_bytes);
                std::memcpy(CMSG_DATA(cmsg), &seg, sizeof(seg));
            }
            pin.group_packets[groups] = static_cast<std::uint32_t>(run);
            iov_cursor += run;
            next += run;
            ++groups;
        }

        // Flush, handling partial completion: sendmmsg may accept a prefix
        // of the headers; resume from the first unsent one. Transient errors
        // retry under the shared backoff; a hard (or retry-exhausted) error
        // skips exactly the offending header's packets.
        std::size_t done = 0;
        int attempts = 0;
        std::chrono::microseconds backoff = kSendBackoffInitial;
        while (done < groups) {
            const int sent = ::sendmmsg(fd_, pin.send_hdrs.data() + done,
                                        static_cast<unsigned>(groups - done), 0);
            ++counters_.send_syscalls;
            if (sent > 0) {
                for (std::size_t i = done; i < done + static_cast<std::size_t>(sent); ++i) {
                    counters_.packets_sent += pin.group_packets[i];
                    if (pin.group_packets[i] > 1) {
                        counters_.gso_segments += pin.group_packets[i];
                    }
                }
                done += static_cast<std::size_t>(sent);
                attempts = 0;
                backoff = kSendBackoffInitial;
                continue;
            }
            const int error = errno;
            if (transient_errno(error) && ++attempts < kSendAttempts) {
                ++counters_.transient_send_errors;
                if (error != EINTR) {
                    std::this_thread::sleep_for(backoff);
                    backoff = std::min(backoff * 2, kSendBackoffCap);
                }
                continue;
            }
            counters_.send_failures += pin.group_packets[done];
            ++done;
            attempts = 0;
            backoff = kSendBackoffInitial;
        }
    }
}

std::size_t DgramWireBackend::receive(std::chrono::milliseconds timeout, util::BufferPool& pool,
                                      std::vector<net::Bytes>& out) {
    if (!ready_) return 0;
    Pinned& pin = *pinned_;
    const std::size_t batch = pin.recv_hdrs.size();
    std::size_t appended = 0;

    // Serial mode is deliberately one recv() per packet — it is the
    // baseline the batched path is benchmarked against, and the legacy
    // behaviour a caller opting out of batching expects.
    auto drain_serial = [&] {
        std::uint8_t* slab = pin.slabs.data();
        for (;;) {
            const auto received = ::recv(fd_, slab, config_.slab_bytes, MSG_DONTWAIT);
            ++counters_.recv_syscalls;
            if (received <= 0) return;
            emit_packet(pool, out, slab, static_cast<std::size_t>(received));
            ++counters_.packets_received;
            ++appended;
        }
    };

    auto drain_batched = [&] {
        for (;;) {
            // The kernel overwrites control lengths and flags per call.
            for (std::size_t i = 0; i < batch; ++i) {
                pin.recv_hdrs[i].msg_hdr.msg_controllen = Pinned::kCtrlBytes;
                pin.recv_hdrs[i].msg_hdr.msg_flags = 0;
            }
            const int got = ::recvmmsg(fd_, pin.recv_hdrs.data(), static_cast<unsigned>(batch),
                                       MSG_DONTWAIT, nullptr);
            ++counters_.recv_syscalls;
            if (got <= 0) return;
            for (int i = 0; i < got; ++i) {
                mmsghdr& hdr = pin.recv_hdrs[i];
                const std::size_t bytes = hdr.msg_len;
                const auto* slab = pin.slabs.data() +
                                   static_cast<std::size_t>(i) * config_.slab_bytes;
                if ((hdr.msg_hdr.msg_flags & MSG_TRUNC) != 0) ++counters_.truncated;
                // A GRO-coalesced read carries several equal-size wire
                // packets (last possibly short); split on the kernel's
                // reported segment size.
                std::size_t segment = bytes;
                if (gro_ok_) {
                    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&hdr.msg_hdr); cmsg != nullptr;
                         cmsg = CMSG_NXTHDR(&hdr.msg_hdr, cmsg)) {
                        if (cmsg->cmsg_level == SOL_UDP && cmsg->cmsg_type == UDP_GRO) {
                            int gro_size = 0;
                            std::memcpy(&gro_size, CMSG_DATA(cmsg), sizeof(gro_size));
                            if (gro_size > 0) segment = static_cast<std::size_t>(gro_size);
                            break;
                        }
                    }
                }
                if (segment == 0 || segment >= bytes) {
                    emit_packet(pool, out, slab, bytes);
                    ++counters_.packets_received;
                    ++appended;
                    continue;
                }
                for (std::size_t offset = 0; offset < bytes; offset += segment) {
                    emit_packet(pool, out, slab + offset,
                                std::min(segment, bytes - offset));
                    ++counters_.packets_received;
                    ++counters_.gro_splits;
                    ++appended;
                }
            }
            if (static_cast<std::size_t>(got) < batch) return;  // socket is dry
        }
    };

    auto drain = [&] {
        if (config_.mode == WireMode::serial) {
            drain_serial();
        } else {
            drain_batched();
        }
    };

    drain();
    if (appended == 0 && timeout.count() > 0) {
        pollfd waiter{fd_, POLLIN, 0};
        const int rc = ::poll(&waiter, 1, static_cast<int>(timeout.count()));
        if (rc > 0 && (waiter.revents & POLLIN) != 0) drain();
    }
    return appended;
}

// ---------------------------------------------------------------------------
// RawWireBackend
// ---------------------------------------------------------------------------

struct RawWireBackend::Pinned {
    // Send side: one header + iovec + destination per packet slot.
    std::vector<mmsghdr> send_hdrs;
    std::vector<iovec> send_iovs;
    std::vector<sockaddr_in> send_addrs;
    // Receive side, shared across the three protocol sockets (drained one
    // socket at a time on the single receiver thread).
    std::vector<mmsghdr> recv_hdrs;
    std::vector<iovec> recv_iovs;
    std::vector<std::uint8_t> slabs;
};

RawWireBackend::RawWireBackend(WireConfig config) : config_(std::move(config)) {
    const std::string source = config_.source.empty() ? "127.0.0.1" : config_.source;
    auto parsed = net::IPv4Address::parse(source);
    if (!parsed) {
        status_ = "bad source address: " + source;
        return;
    }
    local_ = parsed.value();
    ready_ = open_sockets();
    if (!ready_) return;

    const std::size_t batch = config_.clamped_batch();
    pinned_ = std::make_unique<Pinned>();
    pinned_->send_hdrs.resize(batch);
    pinned_->send_iovs.resize(batch);
    pinned_->send_addrs.resize(batch);
    pinned_->recv_hdrs.resize(batch);
    pinned_->recv_iovs.resize(batch);
    pinned_->slabs.resize(batch * config_.slab_bytes);
    for (std::size_t i = 0; i < batch; ++i) {
        iovec& iov = pinned_->recv_iovs[i];
        iov.iov_base = pinned_->slabs.data() + i * config_.slab_bytes;
        iov.iov_len = config_.slab_bytes;
        msghdr& msg = pinned_->recv_hdrs[i].msg_hdr;
        msg = {};
        msg.msg_iov = &iov;
        msg.msg_iovlen = 1;
    }
}

RawWireBackend::~RawWireBackend() { close_sockets(); }

bool RawWireBackend::open_sockets() {
    auto open_raw = [this](int protocol, int& fd) {
        fd = ::socket(AF_INET, SOCK_RAW, protocol);
        if (fd < 0) {
            status_ = std::string("socket() failed: ") + std::strerror(errno);
            return false;
        }
        return true;
    };
    if (!open_raw(IPPROTO_RAW, send_fd_) || !open_raw(IPPROTO_ICMP, recv_fds_[0]) ||
        !open_raw(IPPROTO_TCP, recv_fds_[1]) || !open_raw(IPPROTO_UDP, recv_fds_[2])) {
        close_sockets();
        return false;
    }
    const int one = 1;
    if (::setsockopt(send_fd_, IPPROTO_IP, IP_HDRINCL, &one, sizeof(one)) != 0) {
        status_ = std::string("IP_HDRINCL failed: ") + std::strerror(errno);
        close_sockets();
        return false;
    }
    for (int fd : {send_fd_, recv_fds_[0], recv_fds_[1], recv_fds_[2]}) {
        if (!bind_device(fd, config_.interface, status_)) {
            close_sockets();
            return false;
        }
        grow_socket_buffers(fd);
    }
    // Binding the receive sockets to the lane's source address is what
    // keeps concurrent lanes on a multi-homed host isolated: each lane
    // only ever sees responses addressed to its own vantage.
    if (!config_.source.empty()) {
        sockaddr_in addr = make_sockaddr(local_, 0);
        for (int fd : recv_fds_) {
            if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
                status_ = "bind(" + config_.source + ") failed: " + std::strerror(errno);
                close_sockets();
                return false;
            }
        }
    }
    status_ = "ready";
    return true;
}

void RawWireBackend::close_sockets() noexcept {
    for (int* fd : {&send_fd_, &recv_fds_[0], &recv_fds_[1], &recv_fds_[2]}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
    ready_ = false;
}

void RawWireBackend::send(std::span<const net::Bytes> packets) {
    if (!ready_) return;
    if (config_.mode == WireMode::serial) {
        send_serial(packets);
    } else {
        send_batched(packets);
    }
}

void RawWireBackend::send_serial(std::span<const net::Bytes> packets) {
    for (const net::Bytes& packet : packets) {
        auto destination_ip = net::peek_destination(packet);
        if (!destination_ip) {
            ++counters_.send_failures;
            continue;
        }
        const sockaddr_in destination = make_sockaddr(destination_ip.value(), 0);
        const bool delivered = send_with_retry(
            [&] {
                ++counters_.send_syscalls;
                const auto sent = ::sendto(send_fd_, packet.data(), packet.size(), 0,
                                           reinterpret_cast<const sockaddr*>(&destination),
                                           sizeof(destination));
                if (sent >= 0 && static_cast<std::size_t>(sent) != packet.size()) {
                    errno = EMSGSIZE;  // truncated raw send: hard failure
                    return -1L;
                }
                return static_cast<long>(sent);
            },
            counters_.transient_send_errors, counters_.send_failures);
        if (delivered) ++counters_.packets_sent;
    }
}

void RawWireBackend::send_batched(std::span<const net::Bytes> packets) {
    Pinned& pin = *pinned_;
    const std::size_t batch = pin.send_hdrs.size();
    std::size_t next = 0;
    while (next < packets.size()) {
        std::size_t count = 0;
        while (count < batch && next < packets.size()) {
            const net::Bytes& packet = packets[next++];
            auto destination_ip = net::peek_destination(packet);
            if (!destination_ip) {
                ++counters_.send_failures;
                continue;
            }
            pin.send_addrs[count] = make_sockaddr(destination_ip.value(), 0);
            pin.send_iovs[count].iov_base = const_cast<std::uint8_t*>(packet.data());
            pin.send_iovs[count].iov_len = packet.size();
            msghdr& msg = pin.send_hdrs[count].msg_hdr;
            msg = {};
            msg.msg_name = &pin.send_addrs[count];
            msg.msg_namelen = sizeof(sockaddr_in);
            msg.msg_iov = &pin.send_iovs[count];
            msg.msg_iovlen = 1;
            ++count;
        }
        std::size_t done = 0;
        int attempts = 0;
        std::chrono::microseconds backoff = kSendBackoffInitial;
        while (done < count) {
            const int sent = ::sendmmsg(send_fd_, pin.send_hdrs.data() + done,
                                        static_cast<unsigned>(count - done), 0);
            ++counters_.send_syscalls;
            if (sent > 0) {
                counters_.packets_sent += static_cast<std::uint64_t>(sent);
                done += static_cast<std::size_t>(sent);
                attempts = 0;
                backoff = kSendBackoffInitial;
                continue;
            }
            const int error = errno;
            if (transient_errno(error) && ++attempts < kSendAttempts) {
                ++counters_.transient_send_errors;
                if (error != EINTR) {
                    std::this_thread::sleep_for(backoff);
                    backoff = std::min(backoff * 2, kSendBackoffCap);
                }
                continue;
            }
            ++counters_.send_failures;  // skip exactly the offending packet
            ++done;
            attempts = 0;
            backoff = kSendBackoffInitial;
        }
    }
}

std::size_t RawWireBackend::receive(std::chrono::milliseconds timeout, util::BufferPool& pool,
                                    std::vector<net::Bytes>& out) {
    if (!ready_) return 0;
    std::array<pollfd, 3> fds{{{recv_fds_[0], POLLIN, 0},
                               {recv_fds_[1], POLLIN, 0},
                               {recv_fds_[2], POLLIN, 0}}};
    const int rc = ::poll(fds.data(), fds.size(), static_cast<int>(timeout.count()));
    if (rc <= 0) return 0;
    Pinned& pin = *pinned_;
    const std::size_t batch = pin.recv_hdrs.size();
    std::size_t appended = 0;
    for (const pollfd& entry : fds) {
        if ((entry.revents & POLLIN) == 0) continue;
        if (config_.mode == WireMode::batched) {
            for (;;) {
                const int got = ::recvmmsg(entry.fd, pin.recv_hdrs.data(),
                                           static_cast<unsigned>(batch), MSG_DONTWAIT, nullptr);
                ++counters_.recv_syscalls;
                if (got <= 0) break;
                for (int i = 0; i < got; ++i) {
                    if ((pin.recv_hdrs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0) {
                        ++counters_.truncated;
                    }
                    emit_packet(pool, out,
                                pin.slabs.data() +
                                    static_cast<std::size_t>(i) * config_.slab_bytes,
                                pin.recv_hdrs[i].msg_len);
                    ++counters_.packets_received;
                    ++appended;
                }
                if (static_cast<std::size_t>(got) < batch) break;
            }
        } else {
            // Serial drain: one recv() per packet into the first slab slot.
            std::uint8_t* slab = pin.slabs.data();
            for (;;) {
                const auto received =
                    ::recv(entry.fd, slab, config_.slab_bytes, MSG_DONTWAIT);
                ++counters_.recv_syscalls;
                if (received <= 0) break;
                emit_packet(pool, out, slab, static_cast<std::size_t>(received));
                ++counters_.packets_received;
                ++appended;
            }
        }
    }
    return appended;
}

#else  // !__linux__

struct DgramWireBackend::Pinned {};
struct RawWireBackend::Pinned {};

DgramWireBackend::DgramWireBackend(WireConfig config) : config_(std::move(config)) {
    status_ = "wire backends unsupported on this platform";
}
DgramWireBackend::~DgramWireBackend() = default;
bool DgramWireBackend::set_peer(net::IPv4Address, std::uint16_t) { return false; }
void DgramWireBackend::send(std::span<const net::Bytes>) {}
void DgramWireBackend::send_serial(std::span<const net::Bytes>) {}
void DgramWireBackend::send_batched(std::span<const net::Bytes>) {}
std::size_t DgramWireBackend::receive(std::chrono::milliseconds, util::BufferPool&,
                                      std::vector<net::Bytes>&) {
    return 0;
}

RawWireBackend::RawWireBackend(WireConfig config) : config_(std::move(config)) {
    status_ = "raw sockets unsupported on this platform";
}
RawWireBackend::~RawWireBackend() = default;
bool RawWireBackend::open_sockets() { return false; }
void RawWireBackend::close_sockets() noexcept {}
void RawWireBackend::send(std::span<const net::Bytes>) {}
void RawWireBackend::send_serial(std::span<const net::Bytes>) {}
void RawWireBackend::send_batched(std::span<const net::Bytes>) {}
std::size_t RawWireBackend::receive(std::chrono::milliseconds, util::BufferPool&,
                                    std::vector<net::Bytes>&) {
    return 0;
}

#endif  // __linux__

}  // namespace lfp::probe
