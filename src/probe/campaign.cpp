#include "probe/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "probe/demux.hpp"
#include "stack/simulated_router.hpp"  // kProbePort

namespace lfp::probe {
namespace {

/// Per-target slot layout: slots 0..8 are the nine probes in global send
/// order (round-major, protocols interleaved), slot 9 the SNMP discovery.
constexpr std::uint16_t kSnmpSlot =
    static_cast<std::uint16_t>(kProtocolCount * kRoundsPerProtocol);

constexpr std::uint16_t probe_slot(std::size_t protocol, std::size_t round) {
    return static_cast<std::uint16_t>(round * kProtocolCount + protocol);
}

/// One admitted target awaiting responses.
struct InFlightTarget {
    std::size_t index = 0;  ///< position in the input target span
    TargetProbeResult result;
    std::uint16_t outstanding = 0;
    std::int32_t snmp_message_id = 0;
    std::chrono::steady_clock::time_point deadline;
};

}  // namespace

std::size_t TargetProbeResult::responses_for(ProtoIndex protocol) const {
    const auto& row = probes[static_cast<std::size_t>(protocol)];
    std::size_t count = 0;
    for (const auto& exchange : row) {
        if (exchange.responded()) ++count;
    }
    return count;
}

bool TargetProbeResult::partially_responsive() const {
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
        if (partially_responsive(static_cast<ProtoIndex>(p))) return true;
    }
    return false;
}

std::size_t TargetProbeResult::responsive_protocol_count() const {
    std::size_t count = 0;
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
        if (responses_for(static_cast<ProtoIndex>(p)) > 0) ++count;
    }
    return count;
}

bool TargetProbeResult::any_response() const {
    return responsive_protocol_count() > 0 || snmp.has_value();
}

net::Bytes Campaign::build_probe(net::IPv4Address target, ProtoIndex protocol, std::size_t round,
                                 std::uint16_t ipid) {
    net::IpSendOptions ip;
    ip.source = transport_->vantage_address();
    ip.destination = target;
    ip.identification = ipid;
    ip.ttl = config_.probe_ttl;

    switch (protocol) {
        case ProtoIndex::icmp: {
            // Payload echoes are a size fingerprint; keep a fixed pattern.
            net::Bytes payload(config_.icmp_payload_bytes, 0xA5);
            const auto identifier =
                static_cast<std::uint16_t>(target.value() ^ (target.value() >> 16));
            return net::make_icmp_echo_request(ip, identifier,
                                               static_cast<std::uint16_t>(round), payload);
        }
        case ProtoIndex::tcp: {
            net::TcpSegment segment;
            segment.source_port =
                static_cast<std::uint16_t>(config_.source_port + round);
            segment.destination_port = stack::kProbePort;
            segment.window = 1024;
            if (round < 2) {
                // Two ACK probes (RFC 793 guarantees a RST from closed ports).
                segment.flags.ack = true;
                segment.sequence = 0x1000 + static_cast<std::uint32_t>(round);
                segment.acknowledgment = 0xBEEF0001;
            } else {
                // One SYN with a non-zero ack *field* (flag clear): the RST's
                // sequence number choice is the Table 1 compliance feature.
                segment.flags.syn = true;
                segment.sequence = 0x2000;
                segment.acknowledgment = 0xBEEF0001;
            }
            return net::make_tcp_packet(ip, segment);
        }
        case ProtoIndex::udp: {
            net::UdpDatagram datagram;
            datagram.source_port =
                static_cast<std::uint16_t>(config_.source_port + round);
            datagram.destination_port = stack::kProbePort;
            datagram.payload.assign(config_.udp_payload_bytes, 0x00);
            return net::make_udp_packet(ip, datagram);
        }
    }
    return {};
}

net::Bytes Campaign::build_snmp_probe(net::IPv4Address target, std::int32_t message_id,
                                      std::uint16_t ipid) {
    snmp::DiscoveryRequest discovery;
    discovery.message_id = message_id;

    net::UdpDatagram datagram;
    datagram.source_port = static_cast<std::uint16_t>(config_.source_port + 7);
    datagram.destination_port = snmp::kSnmpPort;
    datagram.payload = discovery.serialize();

    net::IpSendOptions ip;
    ip.source = transport_->vantage_address();
    ip.destination = target;
    ip.identification = ipid;
    ip.ttl = config_.probe_ttl;
    return net::make_udp_packet(ip, datagram);
}

TargetProbeResult Campaign::probe_target(net::IPv4Address target) {
    auto results = run({&target, 1});
    return std::move(results.front());
}

std::vector<TargetProbeResult> Campaign::run(std::span<const net::IPv4Address> targets) {
    return run_indexed(targets, {});
}

std::vector<TargetProbeResult> Campaign::run_indexed(
    std::span<const net::IPv4Address> targets, std::span<const std::uint64_t> global_indices) {
    using Clock = std::chrono::steady_clock;

    if (!global_indices.empty() && global_indices.size() != targets.size()) {
        throw std::invalid_argument("Campaign::run_indexed: " +
                                    std::to_string(global_indices.size()) +
                                    " global indices for " + std::to_string(targets.size()) +
                                    " targets");
    }

    std::vector<TargetProbeResult> results(targets.size());
    if (targets.empty()) return results;

    const std::size_t window = std::max<std::size_t>(1, config_.window);
    ResponseDemux demux;
    std::unordered_map<std::uint64_t, InFlightTarget> in_flight;
    // Flow keys are derived from the target address, so two in-flight copies
    // of the same address would collide in the demux; duplicates wait until
    // the first copy completes (exactly what a serial run does).
    std::unordered_set<std::uint32_t> in_flight_addresses;
    std::size_t next_target = 0;

    // Admission builds and sends the target's whole batch in the fixed
    // global order; because admission itself is in target order, the wire
    // sees the exact same packet sequence at every window size. IPIDs and
    // the SNMP msgID are derived from the target's global index, so a lane
    // probing a slice of a larger list stamps the same IDs a serial run
    // over the full list would.
    auto admit = [&](std::size_t index) {
        const std::uint64_t global_index =
            global_indices.empty() ? index : global_indices[index];
        std::uint16_t next_ipid = static_cast<std::uint16_t>(
            config_.ipid_base + global_index * ids_per_target());
        InFlightTarget state;
        state.index = index;
        state.result.target = targets[index];

        // Flow keys are derived from the same inputs build_probe serializes,
        // so registration needs no re-parse of the packet it just built
        // (request_flow_key over the wire bytes yields these exact keys —
        // the demux tests pin that equivalence).
        const auto target_value = targets[index].value();
        const auto icmp_identifier =
            static_cast<std::uint16_t>(target_value ^ (target_value >> 16));
        auto probe_key = [&](ProtoIndex protocol, std::size_t round) {
            switch (protocol) {
                case ProtoIndex::icmp:
                    return FlowKey{target_value,
                                   static_cast<std::uint8_t>(net::Protocol::icmp),
                                   icmp_identifier, static_cast<std::uint16_t>(round)};
                case ProtoIndex::tcp:
                    return FlowKey{target_value,
                                   static_cast<std::uint8_t>(net::Protocol::tcp),
                                   static_cast<std::uint16_t>(config_.source_port + round),
                                   stack::kProbePort};
                case ProtoIndex::udp:
                default:
                    return FlowKey{target_value,
                                   static_cast<std::uint8_t>(net::Protocol::udp),
                                   static_cast<std::uint16_t>(config_.source_port + round),
                                   stack::kProbePort};
            }
        };

        std::vector<net::Bytes> batch;
        batch.reserve(kSnmpSlot + 1);
        std::uint32_t send_index = 0;
        for (std::size_t round = 0; round < kRoundsPerProtocol; ++round) {
            for (std::size_t p = 0; p < kProtocolCount; ++p) {
                ProbeExchange& exchange = state.result.probes[p][round];
                exchange.request_ipid = next_ipid++;
                exchange.send_index = send_index++;
                exchange.request = build_probe(targets[index], static_cast<ProtoIndex>(p),
                                               round, exchange.request_ipid);
                demux.expect(probe_key(static_cast<ProtoIndex>(p), round),
                             SlotRef{index, probe_slot(p, round)});
                ++state.outstanding;
                batch.push_back(exchange.request);
                ++packets_sent_;
            }
        }
        if (config_.send_snmp) {
            state.snmp_message_id = static_cast<std::int32_t>(
                (config_.snmp_message_id_base + global_index) & 0x7FFFFFFF);
            batch.push_back(
                build_snmp_probe(targets[index], state.snmp_message_id, next_ipid++));
            demux.expect(
                FlowKey{target_value, static_cast<std::uint8_t>(net::Protocol::udp),
                        static_cast<std::uint16_t>(config_.source_port + 7), snmp::kSnmpPort},
                SlotRef{index, kSnmpSlot});
            ++state.outstanding;
            ++packets_sent_;
        }
        state.deadline = Clock::now() + config_.response_timeout;
        transport_->send_batch(batch);
        in_flight_addresses.insert(targets[index].value());
        in_flight.emplace(index, std::move(state));
    };

    auto dispatch = [&](net::Bytes& raw) {
        auto parsed = net::parse_packet(raw);
        if (!parsed) return;
        auto slot = demux.match(parsed.value());
        if (!slot) return;
        auto it = in_flight.find(slot->target);
        if (it == in_flight.end()) return;
        InFlightTarget& state = it->second;
        ++responses_;
        if (state.outstanding > 0) --state.outstanding;
        if (slot->slot == kSnmpSlot) {
            if (const auto* udp = parsed.value().udp()) {
                auto response = snmp::DiscoveryResponse::parse(udp->payload);
                // The msgID closes the flow key: a discovery answer must
                // quote the msgID of this target's request.
                if (response && response.value().message_id == state.snmp_message_id) {
                    state.result.snmp = std::move(response).value();
                }
            }
        } else {
            ProbeExchange& exchange =
                state.result.probes[slot->slot % kProtocolCount][slot->slot / kProtocolCount];
            exchange.response = std::move(raw);
        }
    };

    while (next_target < targets.size() || !in_flight.empty()) {
        while (in_flight.size() < window && next_target < targets.size() &&
               !in_flight_addresses.contains(targets[next_target].value())) {
            admit(next_target++);
        }

        auto inbound = transport_->poll_responses(config_.poll_interval);
        for (net::Bytes& raw : inbound) dispatch(raw);

        // A transport that can prove it holds nothing (the simulation after
        // loss) lets us fail outstanding slots without burning the timeout.
        const bool starved = inbound.empty() && transport_->drained();
        const auto now = Clock::now();
        for (auto it = in_flight.begin(); it != in_flight.end();) {
            InFlightTarget& state = it->second;
            if (state.outstanding == 0 || starved || now >= state.deadline) {
                if (state.outstanding > 0) demux.cancel_target(it->first);
                in_flight_addresses.erase(state.result.target.value());
                results[state.index] = std::move(state.result);
                it = in_flight.erase(it);
            } else {
                ++it;
            }
        }
    }

    strays_ += demux.stray_responses();
    return results;
}

}  // namespace lfp::probe
