#include "probe/campaign.hpp"

#include "stack/simulated_router.hpp"  // kProbePort

namespace lfp::probe {

std::size_t TargetProbeResult::responses_for(ProtoIndex protocol) const {
    const auto& row = probes[static_cast<std::size_t>(protocol)];
    std::size_t count = 0;
    for (const auto& exchange : row) {
        if (exchange.responded()) ++count;
    }
    return count;
}

std::size_t TargetProbeResult::responsive_protocol_count() const {
    std::size_t count = 0;
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
        if (responses_for(static_cast<ProtoIndex>(p)) > 0) ++count;
    }
    return count;
}

bool TargetProbeResult::any_response() const {
    return responsive_protocol_count() > 0 || snmp.has_value();
}

net::Bytes Campaign::build_probe(net::IPv4Address target, ProtoIndex protocol, std::size_t round,
                                 std::uint16_t ipid) {
    net::IpSendOptions ip;
    ip.source = transport_->vantage_address();
    ip.destination = target;
    ip.identification = ipid;
    ip.ttl = config_.probe_ttl;

    switch (protocol) {
        case ProtoIndex::icmp: {
            // Payload echoes are a size fingerprint; keep a fixed pattern.
            net::Bytes payload(config_.icmp_payload_bytes, 0xA5);
            const auto identifier =
                static_cast<std::uint16_t>(target.value() ^ (target.value() >> 16));
            return net::make_icmp_echo_request(ip, identifier,
                                               static_cast<std::uint16_t>(round), payload);
        }
        case ProtoIndex::tcp: {
            net::TcpSegment segment;
            segment.source_port =
                static_cast<std::uint16_t>(config_.source_port + round);
            segment.destination_port = stack::kProbePort;
            segment.window = 1024;
            if (round < 2) {
                // Two ACK probes (RFC 793 guarantees a RST from closed ports).
                segment.flags.ack = true;
                segment.sequence = 0x1000 + static_cast<std::uint32_t>(round);
                segment.acknowledgment = 0xBEEF0001;
            } else {
                // One SYN with a non-zero ack *field* (flag clear): the RST's
                // sequence number choice is the Table 1 compliance feature.
                segment.flags.syn = true;
                segment.sequence = 0x2000;
                segment.acknowledgment = 0xBEEF0001;
            }
            return net::make_tcp_packet(ip, segment);
        }
        case ProtoIndex::udp: {
            net::UdpDatagram datagram;
            datagram.source_port =
                static_cast<std::uint16_t>(config_.source_port + round);
            datagram.destination_port = stack::kProbePort;
            datagram.payload.assign(config_.udp_payload_bytes, 0x00);
            return net::make_udp_packet(ip, datagram);
        }
    }
    return {};
}

TargetProbeResult Campaign::probe_target(net::IPv4Address target) {
    TargetProbeResult result;
    result.target = target;

    // Interleave protocols round by round: icmp,tcp,udp, icmp,tcp,udp, ...
    // The global send order is what makes shared IPID counters observable.
    std::uint32_t send_index = 0;
    for (std::size_t round = 0; round < kRoundsPerProtocol; ++round) {
        for (std::size_t p = 0; p < kProtocolCount; ++p) {
            const auto protocol = static_cast<ProtoIndex>(p);
            ProbeExchange& exchange = result.probes[p][round];
            exchange.request_ipid = next_ipid_++;
            exchange.send_index = send_index++;
            exchange.request = build_probe(target, protocol, round, exchange.request_ipid);
            ++packets_sent_;
            exchange.response = transport_->transact(exchange.request);
            if (exchange.response) ++responses_;
        }
    }

    if (config_.send_snmp) {
        snmp::DiscoveryRequest discovery;
        discovery.message_id = static_cast<std::int32_t>(snmp_message_id_++ & 0x7FFFFFFF);

        net::UdpDatagram datagram;
        datagram.source_port = static_cast<std::uint16_t>(config_.source_port + 7);
        datagram.destination_port = snmp::kSnmpPort;
        datagram.payload = discovery.serialize();

        net::IpSendOptions ip;
        ip.source = transport_->vantage_address();
        ip.destination = target;
        ip.identification = next_ipid_++;
        ip.ttl = config_.probe_ttl;
        ++packets_sent_;
        auto raw = transport_->transact(net::make_udp_packet(ip, datagram));
        if (raw) {
            ++responses_;
            auto packet = net::parse_packet(*raw);
            if (packet) {
                if (const auto* udp = packet.value().udp()) {
                    auto response = snmp::DiscoveryResponse::parse(udp->payload);
                    if (response) result.snmp = std::move(response).value();
                }
            }
        }
    }
    return result;
}

std::vector<TargetProbeResult> Campaign::run(std::span<const net::IPv4Address> targets) {
    std::vector<TargetProbeResult> results;
    results.reserve(targets.size());
    for (net::IPv4Address target : targets) {
        results.push_back(probe_target(target));
    }
    return results;
}

}  // namespace lfp::probe
