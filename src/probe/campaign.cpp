#include "probe/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "net/checksum.hpp"
#include "probe/demux.hpp"
#include "stack/simulated_router.hpp"  // kProbePort
#include "util/alloc_trace.hpp"
#include "util/flat_hash.hpp"
#include "util/spsc_ring.hpp"

namespace lfp::probe {
namespace {

/// Per-target slot layout: slots 0..8 are the nine probes in global send
/// order (round-major, protocols interleaved), slot 9 the SNMP discovery.
constexpr std::uint16_t kSnmpSlot =
    static_cast<std::uint16_t>(kProtocolCount * kRoundsPerProtocol);

constexpr std::uint16_t probe_slot(std::size_t protocol, std::size_t round) {
    return static_cast<std::uint16_t>(round * kProtocolCount + protocol);
}

/// Probe slots plus the trailing SNMP slot.
constexpr std::size_t kSlotsPerTarget = kSnmpSlot + 1;

// Byte offsets into a serialized probe packet (20-byte IPv4 header, no
// options — the builders never emit options). Template patching rewrites
// exactly the per-target fields at these offsets and recomputes the two
// checksums; everything else is invariant across targets, which is what
// makes the template cache byte-identical to a fresh build_probe() (pinned
// by the template-patching test).
constexpr std::size_t kIpIdOffset = 4;
constexpr std::size_t kIpChecksumOffset = 10;
constexpr std::size_t kIpDestOffset = 16;
constexpr std::size_t kIpHeaderBytes = net::Ipv4Header::kSize;
constexpr std::size_t kIcmpChecksumOffset = kIpHeaderBytes + 2;
constexpr std::size_t kIcmpIdentifierOffset = kIpHeaderBytes + 4;
constexpr std::size_t kTcpChecksumOffset = kIpHeaderBytes + 16;
constexpr std::size_t kUdpChecksumOffset = kIpHeaderBytes + 6;

inline void put_u16(net::Bytes& packet, std::size_t offset, std::uint16_t value) {
    packet[offset] = static_cast<std::uint8_t>(value >> 8);
    packet[offset + 1] = static_cast<std::uint8_t>(value & 0xFF);
}

inline void put_u32(net::Bytes& packet, std::size_t offset, std::uint32_t value) {
    packet[offset] = static_cast<std::uint8_t>(value >> 24);
    packet[offset + 1] = static_cast<std::uint8_t>(value >> 16);
    packet[offset + 2] = static_cast<std::uint8_t>(value >> 8);
    packet[offset + 3] = static_cast<std::uint8_t>(value & 0xFF);
}

inline std::uint16_t read_u16(const net::Bytes& packet, std::size_t offset) {
    return static_cast<std::uint16_t>((packet[offset] << 8) | packet[offset + 1]);
}

/// The per-template checksum bases incremental patching starts from: the
/// template's stored IP header checksum and its *computed* L4 checksum
/// (pre RFC 768 zero-substitution — storing the substituted value would be
/// ambiguous: a stored 0xFFFF could mean a computed 0 or a computed
/// 0xFFFF, and the two diverge under further incremental updates).
struct PatchBase {
    std::uint16_t ip = 0;
    std::uint16_t l4 = 0;
};

/// Derives a template's PatchBase. Templates are built against target 0,
/// IPID 0, ICMP identifier 0, so every word the patcher later rewrites is
/// zero in the template — each incremental update is then simply "old word
/// 0 → new word". ICMP/TCP store their computed checksum verbatim, so the
/// base reads straight out of the packet; UDP recomputes once to undo the
/// possible zero-substitution.
PatchBase patch_base_for(net::Bytes& tpl, ProtoIndex protocol, net::IPv4Address source) {
    PatchBase base;
    base.ip = read_u16(tpl, kIpChecksumOffset);
    switch (protocol) {
        case ProtoIndex::icmp:
            base.l4 = read_u16(tpl, kIcmpChecksumOffset);
            break;
        case ProtoIndex::tcp:
            base.l4 = read_u16(tpl, kTcpChecksumOffset);
            break;
        case ProtoIndex::udp: {
            const std::uint16_t stored = read_u16(tpl, kUdpChecksumOffset);
            put_u16(tpl, kUdpChecksumOffset, 0);
            const std::span<const std::uint8_t> bytes(tpl.data(), tpl.size());
            base.l4 = net::transport_checksum(source, net::IPv4Address(0), 17,
                                              bytes.subspan(kIpHeaderBytes));
            put_u16(tpl, kUdpChecksumOffset, stored);
            break;
        }
    }
    return base;
}

/// Rewrites the per-target fields of a cached probe template in place:
/// destination address, IPID, the ICMP identifier (derived from the
/// target), and both checksums. The result is byte-for-byte what
/// build_probe() would have serialized for this target — but without the
/// serializer's buffer allocation or a full re-sum of either checksum:
/// both checksums update incrementally (RFC 1624) from the template's
/// PatchBase, touching only the handful of header words that actually
/// changed. Bit-for-bit equivalence to the full recomputation holds
/// because every patched-over template word is zero and the template's
/// word sum is non-zero (see net::checksum_update); the template-patching
/// and wire tests pin it.
void patch_probe(net::Bytes& packet, ProtoIndex protocol, const PatchBase& base,
                 net::IPv4Address target, std::uint16_t ipid) {
    const auto dest_hi = static_cast<std::uint16_t>(target.value() >> 16);
    const auto dest_lo = static_cast<std::uint16_t>(target.value() & 0xFFFF);
    put_u32(packet, kIpDestOffset, target.value());
    put_u16(packet, kIpIdOffset, ipid);
    std::uint16_t ip_sum = net::checksum_update(base.ip, 0, ipid);
    ip_sum = net::checksum_update(ip_sum, 0, dest_hi);
    ip_sum = net::checksum_update(ip_sum, 0, dest_lo);
    put_u16(packet, kIpChecksumOffset, ip_sum);
    switch (protocol) {
        case ProtoIndex::icmp: {
            const auto identifier =
                static_cast<std::uint16_t>(target.value() ^ (target.value() >> 16));
            put_u16(packet, kIcmpIdentifierOffset, identifier);
            put_u16(packet, kIcmpChecksumOffset, net::checksum_update(base.l4, 0, identifier));
            break;
        }
        case ProtoIndex::tcp: {
            // Only the pseudo-header destination enters the TCP checksum.
            std::uint16_t sum = net::checksum_update(base.l4, 0, dest_hi);
            sum = net::checksum_update(sum, 0, dest_lo);
            put_u16(packet, kTcpChecksumOffset, sum);
            break;
        }
        case ProtoIndex::udp: {
            std::uint16_t sum = net::checksum_update(base.l4, 0, dest_hi);
            sum = net::checksum_update(sum, 0, dest_lo);
            if (sum == 0) sum = 0xFFFF;  // RFC 768: zero means "no checksum"
            put_u16(packet, kUdpChecksumOffset, sum);
            break;
        }
    }
}

/// Minimal BER encoding length (bytes) of a non-negative INTEGER value —
/// what the discovery packet's two msgID fields use. The SNMP template
/// cache keys on it: a byte patch must never change a field's length.
constexpr std::size_t ber_int_len(std::uint32_t value) {
    if (value < 0x80) return 1;
    if (value < 0x8000) return 2;
    if (value < 0x800000) return 3;
    return 4;
}

/// A cached SNMP discovery template for one msgID encoding length: the
/// serialized packet, its checksum bases, where the two msgID copies live
/// (request-id and msgID both encode the campaign's message id), and the
/// 16-bit checksum words those runs overlap, with their template values,
/// for incremental updates. Offsets are recovered structurally — two
/// builds differing only in msgID are diffed byte-for-byte — so the cache
/// needs no knowledge of BER layout and disables itself (patchable=false,
/// falling back to fresh serialization) if the diff ever looks unlike two
/// clean runs.
struct SnmpTemplate {
    bool tried = false;
    bool patchable = false;
    net::Bytes bytes;
    PatchBase base;
    std::size_t msgid_len = 0;
    std::array<std::size_t, 2> runs{};
    std::array<std::pair<std::size_t, std::uint16_t>, 6> words{};
    std::size_t word_count = 0;
};

/// Raw inbound packets cross from the receive thread to the scheduler over
/// a ring this deep. Deeper than any sane in-flight probe count, so the
/// receiver only ever waits when the scheduler is truly swamped.
constexpr std::size_t kInboundRingDepth = 2048;

/// Multiplicative decrease factor on loss / rate-limit signals.
constexpr double kWindowBackoff = 0.5;

/// Adaptive runs open at this window (capped by the ceiling) and slow-start
/// upward, instead of blasting the ceiling blind: an opening burst into a
/// rate-limited path would empty its token budget instantly and spend the
/// whole run paying for it (TCP starts small for the same reason).
constexpr double kAdaptiveInitialWindow = 8.0;

/// Loss-shaped completions tolerated before the window reacts: unlike TCP,
/// a prober cannot read every loss as congestion — background loss on a
/// long path is rate-independent, and halving on each of its victims would
/// pin the window at the floor no matter how polite the send rate already
/// is. Only when more than this fraction of a flight's completions come
/// back partial does the loss profile look rate-driven.
constexpr double kPartialLossTolerance = 0.10;

/// Growth stops this far below the learned quench ceiling: sitting at the
/// knee keeps tripping the limiter (each trip parks its victims for the
/// response timeout), so the window settles with headroom instead.
constexpr double kQuenchCeilingMargin = 0.85;

/// The learned ceiling relaxes by this factor per clean completion, so an
/// opening-burst transient (the token bucket starts at its burst size,
/// well below its sustained rate) cannot pin the window forever: the
/// estimate drifts back up over hundreds of clean completions and the
/// next quench re-anchors it at the real knee.
constexpr double kQuenchCeilingRecovery = 1.001;

/// One admitted target awaiting responses. Lives in a fixed slot pool —
/// SlotRef::target carries the pool slot id, so dispatch is a direct index
/// instead of a hash lookup, and completion releases the slot to a free
/// list. The registered flow keys are remembered so a timed-out target's
/// registrations are dropped with O(keys) exact erases rather than a
/// whole-table scan.
struct InFlightTarget {
    std::size_t index = 0;  ///< position in the input target span
    TargetProbeResult result;
    std::uint16_t outstanding = 0;
    std::int32_t snmp_message_id = 0;
    std::chrono::steady_clock::time_point deadline;
    std::array<FlowKey, kSlotsPerTarget> keys{};
    std::uint16_t key_count = 0;
    bool active = false;
};

/// The dedicated receive thread: blocks in poll_responses() and forwards
/// raw packets into the SPSC ring. Publishes "the transport was drained as
/// of send epoch E" so the scheduler can fail outstanding probes without
/// burning the response timeout — but only when no send raced the
/// observation (epoch mismatch makes the claim conservatively stale).
class ReceiveLoop {
  public:
    static constexpr std::uint64_t kNeverDrained = ~std::uint64_t{0};

    ReceiveLoop(ProbeTransport& transport, const Campaign::Config& config)
        : transport_(&transport), config_(&config), ring_(kInboundRingDepth) {
        thread_ = std::thread([this] { loop(); });
    }

    ~ReceiveLoop() {
        // The normal and exceptional paths both join explicitly; this is
        // the backstop, and a destructor must not throw.
        try {
            stop_and_join();
        } catch (...) {
        }
    }

    ReceiveLoop(const ReceiveLoop&) = delete;
    ReceiveLoop& operator=(const ReceiveLoop&) = delete;

    /// Scheduler side: bump after every send_batch() completes.
    void note_sent() { send_epoch_.fetch_add(1, std::memory_order_release); }

    /// Scheduler side: pop one raw inbound packet.
    bool try_pop(net::Bytes& out) { return ring_.try_pop(out); }

    /// Scheduler side: true when provably no response is pending anywhere —
    /// not in the transport, not in the receiver's hands, not in the ring.
    /// The drained observation must cover the current send epoch (all
    /// packets a poll saw were pushed before the epoch was published) and
    /// the ring must be empty *after* reading the publication.
    [[nodiscard]] bool starved() {
        if (drained_epoch_.load(std::memory_order_acquire) !=
            send_epoch_.load(std::memory_order_relaxed)) {
            return false;
        }
        return ring_.empty();
    }

    void stop_and_join() {
        if (!thread_.joinable()) return;
        stop_.store(true, std::memory_order_release);
        thread_.join();
        if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
    }

  private:
    void loop() {
        // Attribution tag for allocation-counting harnesses: everything
        // this thread allocates belongs to the receive stage.
        util::AllocStageScope stage("recv");
        try {
            util::SpinBackoff backoff(config_->idle_backoff);
            // One scratch vector for the thread's lifetime: packets are
            // moved out into the ring, so after warm-up each poll reuses
            // the same capacity instead of allocating a fresh vector.
            std::vector<net::Bytes> inbound;
            inbound.reserve(kInboundRingDepth / 4);
            while (!stop_.load(std::memory_order_acquire)) {
                // Capture the epoch *before* polling: any send that lands
                // after this load bumps the epoch and invalidates a drained
                // observation made by this poll.
                const std::uint64_t epoch = send_epoch_.load(std::memory_order_acquire);
                inbound.clear();
                transport_->poll_responses_into(config_->poll_interval, inbound);
                if (inbound.empty()) {
                    if (transport_->drained()) {
                        drained_epoch_.store(epoch, std::memory_order_release);
                    }
                    // An immediate empty return (drained transports do this)
                    // must not become a hot spin — but stay on the CPU for
                    // the first beats: the scheduler is usually about to
                    // send and handoff latency bounds the whole pipeline.
                    backoff.pause();
                    continue;
                }
                backoff.reset();
                for (net::Bytes& raw : inbound) {
                    util::SpinBackoff push_backoff(config_->idle_backoff);
                    while (!ring_.try_push(std::move(raw))) {
                        if (stop_.load(std::memory_order_acquire)) return;
                        // The ring only stays full while the scheduler is
                        // stalled on a slow consumer — don't burn a core
                        // for the duration of that stall.
                        push_backoff.pause();
                    }
                }
            }
        } catch (...) {
            error_ = std::current_exception();
        }
    }

    ProbeTransport* transport_;
    const Campaign::Config* config_;
    util::SpscRing<net::Bytes> ring_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> send_epoch_{0};
    std::atomic<std::uint64_t> drained_epoch_{kNeverDrained};
    std::exception_ptr error_;  ///< synchronised by thread_.join()
};

}  // namespace

std::size_t TargetProbeResult::responses_for(ProtoIndex protocol) const {
    const auto& row = probes[static_cast<std::size_t>(protocol)];
    std::size_t count = 0;
    for (const auto& exchange : row) {
        if (exchange.responded()) ++count;
    }
    return count;
}

bool TargetProbeResult::partially_responsive() const {
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
        if (partially_responsive(static_cast<ProtoIndex>(p))) return true;
    }
    return false;
}

std::size_t TargetProbeResult::responsive_protocol_count() const {
    std::size_t count = 0;
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
        if (responses_for(static_cast<ProtoIndex>(p)) > 0) ++count;
    }
    return count;
}

bool TargetProbeResult::any_response() const {
    return responsive_protocol_count() > 0 || snmp.has_value();
}

net::Bytes Campaign::build_probe(net::IPv4Address target, ProtoIndex protocol, std::size_t round,
                                 std::uint16_t ipid) {
    net::IpSendOptions ip;
    ip.source = transport_->vantage_address();
    ip.destination = target;
    ip.identification = ipid;
    ip.ttl = config_.probe_ttl;

    switch (protocol) {
        case ProtoIndex::icmp: {
            // Payload echoes are a size fingerprint; keep a fixed pattern.
            net::Bytes payload(config_.icmp_payload_bytes, 0xA5);
            const auto identifier =
                static_cast<std::uint16_t>(target.value() ^ (target.value() >> 16));
            return net::make_icmp_echo_request(ip, identifier,
                                               static_cast<std::uint16_t>(round), payload);
        }
        case ProtoIndex::tcp: {
            net::TcpSegment segment;
            segment.source_port =
                static_cast<std::uint16_t>(config_.source_port + round);
            segment.destination_port = stack::kProbePort;
            segment.window = 1024;
            if (round < 2) {
                // Two ACK probes (RFC 793 guarantees a RST from closed ports).
                segment.flags.ack = true;
                segment.sequence = 0x1000 + static_cast<std::uint32_t>(round);
                segment.acknowledgment = 0xBEEF0001;
            } else {
                // One SYN with a non-zero ack *field* (flag clear): the RST's
                // sequence number choice is the Table 1 compliance feature.
                segment.flags.syn = true;
                segment.sequence = 0x2000;
                segment.acknowledgment = 0xBEEF0001;
            }
            return net::make_tcp_packet(ip, segment);
        }
        case ProtoIndex::udp: {
            net::UdpDatagram datagram;
            datagram.source_port =
                static_cast<std::uint16_t>(config_.source_port + round);
            datagram.destination_port = stack::kProbePort;
            datagram.payload.assign(config_.udp_payload_bytes, 0x00);
            return net::make_udp_packet(ip, datagram);
        }
    }
    return {};
}

net::Bytes Campaign::build_snmp_probe(net::IPv4Address target, std::int32_t message_id,
                                      std::uint16_t ipid) {
    snmp::DiscoveryRequest discovery;
    discovery.message_id = message_id;

    net::UdpDatagram datagram;
    datagram.source_port = static_cast<std::uint16_t>(config_.source_port + 7);
    datagram.destination_port = snmp::kSnmpPort;
    datagram.payload = discovery.serialize();

    net::IpSendOptions ip;
    ip.source = transport_->vantage_address();
    ip.destination = target;
    ip.identification = ipid;
    ip.ttl = config_.probe_ttl;
    return net::make_udp_packet(ip, datagram);
}

std::size_t Campaign::current_window() const noexcept {
    const std::size_t ceiling = std::max<std::size_t>(1, config_.window);
    if (!config_.adaptive_window || cwnd_ < 0) return ceiling;
    return std::clamp<std::size_t>(static_cast<std::size_t>(cwnd_), 1, ceiling);
}

TargetProbeResult Campaign::probe_target(net::IPv4Address target) {
    auto results = run({&target, 1});
    return std::move(results.front());
}

std::vector<TargetProbeResult> Campaign::run(std::span<const net::IPv4Address> targets) {
    return run_indexed(targets, {});
}

std::vector<TargetProbeResult> Campaign::run_indexed(
    std::span<const net::IPv4Address> targets, std::span<const std::uint64_t> global_indices) {
    std::vector<TargetProbeResult> results(targets.size());
    run_streaming(targets, global_indices,
                  [&results](std::size_t index, TargetProbeResult&& result) {
                      results[index] = std::move(result);
                      return true;
                  });
    return results;
}

void Campaign::run_streaming(
    std::span<const net::IPv4Address> targets, std::span<const std::uint64_t> global_indices,
    const std::function<bool(std::size_t, TargetProbeResult&&)>& emit,
    const std::atomic<bool>* cancel) {
    using Clock = std::chrono::steady_clock;

    if (!global_indices.empty() && global_indices.size() != targets.size()) {
        throw std::invalid_argument("Campaign::run_streaming: " +
                                    std::to_string(global_indices.size()) +
                                    " global indices for " + std::to_string(targets.size()) +
                                    " targets");
    }
    // Config validation precedes the empty-list early return: a broken
    // pacing config is broken regardless of the first run's target count.
    if (!(config_.packets_per_second >= 0)) {  // also rejects NaN
        throw std::invalid_argument(
            "Campaign::Config::packets_per_second must be >= 0 (0 = unpaced)");
    }
    if (config_.packets_per_second > 0 && !(config_.pacing_burst > 0)) {
        throw std::invalid_argument(
            "Campaign::Config::pacing_burst must be > 0 when pacing is on");
    }
    if (targets.empty()) return;

    // Between-target send shaping: admission spends one token per packet of
    // the target's batch, so the wire rate between targets settles at the
    // cap while the in-flight window independently bounds concurrency. The
    // burst is clamped up to one batch so a single admission can always be
    // served from a full bucket.
    if (config_.packets_per_second > 0 && !pacer_) {
        pacer_.emplace(config_.packets_per_second,
                       std::max(config_.pacing_burst,
                                static_cast<double>(ids_per_target())));
    }

    const std::size_t ceiling = std::max<std::size_t>(1, config_.window);
    if (cwnd_ < 0) {
        cwnd_ = config_.adaptive_window
                    ? std::min(static_cast<double>(ceiling), kAdaptiveInitialWindow)
                    : static_cast<double>(ceiling);
    }
    // Everything below is sized once, up front, for the whole run: the
    // steady-state admit → dispatch → complete → emit cycle then runs with
    // zero heap allocations per target (keep_request_bytes and send_snmp
    // permitting — see their Config comments). The probe-allocation test
    // pins this with a global operator-new counter.
    const std::size_t pool_size = std::min(ceiling, targets.size());
    ResponseDemux demux;
    demux.reserve(pool_size * kSlotsPerTarget);
    std::vector<InFlightTarget> slots(pool_size);
    std::vector<std::uint32_t> free_slots;
    free_slots.reserve(pool_size);
    for (std::size_t i = pool_size; i-- > 0;) {
        free_slots.push_back(static_cast<std::uint32_t>(i));
    }
    std::size_t in_flight_count = 0;
    // Flow keys are derived from the target address, so two in-flight copies
    // of the same address would collide in the demux; duplicates wait until
    // the first copy completes (exactly what a serial run does).
    util::FlatSet<std::uint32_t> in_flight_addresses;
    in_flight_addresses.reserve(pool_size);
    // Targets completed out of order but not yet emittable: the engine
    // emits strictly in input order, so a completed target waits in this
    // circular buffer (slot = input index mod capacity) for its
    // predecessors. Admission stalls once next_target runs holdback_limit
    // ahead of next_emit, so a head-of-line target waiting out its response
    // timeout bounds memory at O(window) instead of buffering everything
    // its successors complete in the meantime — and the mod mapping stays
    // collision-free because in-flight + held-back spans never exceed the
    // capacity.
    struct HoldbackEntry {
        TargetProbeResult result;
        bool present = false;
    };
    const std::size_t holdback_limit = 4 * pool_size + 64;
    std::vector<HoldbackEntry> holdback(holdback_limit);
    std::size_t next_target = 0;
    std::size_t next_emit = 0;
    std::size_t completed = 0;

    // Probe templates: the nine per-slot packets serialized once against a
    // placeholder target, then copied into pooled batch buffers and patched
    // per admission.
    std::array<net::Bytes, kSnmpSlot> templates;
    std::array<PatchBase, kSnmpSlot> patch_bases;
    const net::IPv4Address vantage = transport_->vantage_address();
    for (std::size_t round = 0; round < kRoundsPerProtocol; ++round) {
        for (std::size_t p = 0; p < kProtocolCount; ++p) {
            net::Bytes& tpl = templates[probe_slot(p, round)];
            tpl = build_probe(net::IPv4Address(0), static_cast<ProtoIndex>(p), round, 0);
            patch_bases[probe_slot(p, round)] =
                patch_base_for(tpl, static_cast<ProtoIndex>(p), vantage);
        }
    }
    // Batch buffers are pooled across admissions: assign() reuses capacity,
    // so after the first admission the nine probe copies are pure memcpy.
    std::array<net::Bytes, kSlotsPerTarget> batch;

    // The SNMP discovery is templated too — its BER tree was the admit
    // path's dominant allocator (~80 heap allocations per serialize). The
    // packet differs between targets only in the msgID (encoded twice) and
    // the IP fields; the msgID is a variable-length BER integer, so one
    // template is cached per encoding length and the patcher rewrites the
    // fixed-width runs in place, updating the UDP checksum incrementally
    // over exactly the words the runs overlap. Anything structurally
    // surprising (diff not two clean runs, runs outside the payload, a run
    // at the very tail) permanently falls back to fresh serialization.
    std::array<SnmpTemplate, 5> snmp_templates;  // indexed by msgid_len 1..4
    auto snmp_patch_or_build = [&](net::Bytes& packet, net::IPv4Address target,
                                   std::uint16_t ipid, std::int32_t msg_id) {
        const auto id_value = static_cast<std::uint32_t>(msg_id);
        SnmpTemplate& tmpl = snmp_templates[ber_int_len(id_value)];
        if (!tmpl.tried) {
            tmpl.tried = true;
            tmpl.msgid_len = ber_int_len(id_value);
            // Representatives whose every encoded byte differs, so the diff
            // exposes each run in full; both stay in the same length class.
            static constexpr std::uint32_t kIdA[5] = {0, 0x7F, 0x7F7F, 0x7F7F7F,
                                                      0x7F7F7F7F};
            static constexpr std::uint32_t kIdB[5] = {0, 0x01, 0x4040, 0x404040,
                                                      0x40404040};
            net::Bytes built = build_snmp_probe(
                net::IPv4Address(0), static_cast<std::int32_t>(kIdA[tmpl.msgid_len]), 0);
            const net::Bytes alt = build_snmp_probe(
                net::IPv4Address(0), static_cast<std::int32_t>(kIdB[tmpl.msgid_len]), 0);
            std::array<std::size_t, 8> diff{};
            std::size_t diff_count = 0;
            bool ok = built.size() == alt.size();
            for (std::size_t i = 0; ok && i < built.size(); ++i) {
                // The UDP checksum differs too (it covers the payload);
                // it's patched separately, so it's not part of the runs.
                if (i == kUdpChecksumOffset || i == kUdpChecksumOffset + 1) continue;
                if (built[i] == alt[i]) continue;
                if (diff_count == diff.size()) ok = false;
                else diff[diff_count++] = i;
            }
            ok = ok && diff_count == 2 * tmpl.msgid_len;
            if (ok) {
                tmpl.runs = {diff[0], diff[tmpl.msgid_len]};
                for (std::size_t r = 0; ok && r < 2; ++r) {
                    for (std::size_t j = 1; j < tmpl.msgid_len; ++j) {
                        ok = ok && diff[r * tmpl.msgid_len + j] == tmpl.runs[r] + j;
                    }
                    ok = ok && tmpl.runs[r] >= kIpHeaderBytes + 8 &&
                         ((tmpl.runs[r] + tmpl.msgid_len - 1) | 1) + 1 <= built.size();
                }
            }
            if (ok) {
                tmpl.bytes = std::move(built);
                tmpl.base = patch_base_for(tmpl.bytes, ProtoIndex::udp, vantage);
                for (std::size_t run : tmpl.runs) {
                    const std::size_t first = run & ~std::size_t{1};
                    const std::size_t last = (run + tmpl.msgid_len - 1) & ~std::size_t{1};
                    for (std::size_t w = first; w <= last; w += 2) {
                        bool seen = false;
                        for (std::size_t k = 0; k < tmpl.word_count; ++k) {
                            seen = seen || tmpl.words[k].first == w;
                        }
                        if (!seen) tmpl.words[tmpl.word_count++] = {w, read_u16(tmpl.bytes, w)};
                    }
                }
                tmpl.patchable = true;
            }
        }
        if (!tmpl.patchable) {
            packet = build_snmp_probe(target, msg_id, ipid);
            return;
        }
        packet.assign(tmpl.bytes.begin(), tmpl.bytes.end());
        for (std::size_t run : tmpl.runs) {
            for (std::size_t j = 0; j < tmpl.msgid_len; ++j) {
                packet[run + j] = static_cast<std::uint8_t>(
                    id_value >> (8 * (tmpl.msgid_len - 1 - j)));
            }
        }
        const auto dest_hi = static_cast<std::uint16_t>(target.value() >> 16);
        const auto dest_lo = static_cast<std::uint16_t>(target.value() & 0xFFFF);
        std::uint16_t sum = net::checksum_update(tmpl.base.l4, 0, dest_hi);
        sum = net::checksum_update(sum, 0, dest_lo);
        for (std::size_t k = 0; k < tmpl.word_count; ++k) {
            sum = net::checksum_update(sum, tmpl.words[k].second,
                                       read_u16(packet, tmpl.words[k].first));
        }
        if (sum == 0) sum = 0xFFFF;  // RFC 768: zero means "no checksum"
        put_u16(packet, kUdpChecksumOffset, sum);
        put_u32(packet, kIpDestOffset, target.value());
        put_u16(packet, kIpIdOffset, ipid);
        std::uint16_t ip_sum = net::checksum_update(tmpl.base.ip, 0, ipid);
        ip_sum = net::checksum_update(ip_sum, 0, dest_hi);
        ip_sum = net::checksum_update(ip_sum, 0, dest_lo);
        put_u16(packet, kIpChecksumOffset, ip_sum);
    };

    // At most one multiplicative decrease per in-flight generation: after a
    // back-off, this many completions must drain before the next decrease
    // (the targets that were already in flight all saw the same congested
    // window; punishing each would collapse the window to 1 on any burst).
    std::size_t decrease_holdoff = 0;
    // Loss-rate accounting for the tolerance check, evaluated once per
    // flight's worth of completions.
    std::size_t eval_completions = 0;
    std::size_t eval_partials = 0;

    auto back_off = [&](bool from_quench) {
        if (!config_.adaptive_window || decrease_holdoff > 0) return;
        // An explicit quench marks the current window as over budget;
        // remember the lowest such knee so growth stops short of it.
        if (from_quench) quench_ceiling_ = std::min(quench_ceiling_, cwnd_);
        cwnd_ = std::max(1.0, cwnd_ * kWindowBackoff);
        ++window_decreases_;
        decrease_holdoff = std::max<std::size_t>(1, in_flight_count);
    };
    enum class Completion { clean, partial, silent };
    auto on_completion = [&](Completion completion) {
        if (decrease_holdoff > 0) --decrease_holdoff;
        if (!config_.adaptive_window) return;
        switch (completion) {
            case Completion::clean: {
                // Slow start until the first congestion event (+1 per clean
                // completion — the window doubles per flight), congestion
                // avoidance after (+1 per window of clean completions),
                // capped at the configured ceiling and a margin below the
                // (slowly relaxing) learned quench knee.
                quench_ceiling_ = std::min(1e300, quench_ceiling_ * kQuenchCeilingRecovery);
                const double limit =
                    std::min(static_cast<double>(ceiling),
                             std::max(1.0, kQuenchCeilingMargin * quench_ceiling_));
                cwnd_ = std::min(limit, cwnd_ + (window_decreases_ == 0
                                                     ? 1.0
                                                     : 1.0 / std::max(1.0, cwnd_)));
                break;
            }
            case Completion::partial:
                // A protocol answered some rounds but not all of them: a
                // stack that speaks a protocol answers every round unless
                // packets dropped — drop-shaped evidence. Counted below;
                // the window reacts only when the *rate* of such
                // completions outruns background loss.
                break;
            case Completion::silent:
                // Whole-protocol silence (or a dead address) is policy- or
                // filtering-shaped, not congestion-shaped: neither grow nor
                // shrink, or phantom-padded and SNMP-filtered target lists
                // would collapse the window for no responsiveness gain.
                break;
        }
        ++eval_completions;
        if (completion == Completion::partial) ++eval_partials;
        const std::size_t eval_span = std::max<std::size_t>(
            16, static_cast<std::size_t>(cwnd_));
        if (eval_completions >= eval_span) {
            if (static_cast<double>(eval_partials) >
                kPartialLossTolerance * static_cast<double>(eval_completions)) {
                back_off(/*from_quench=*/false);
            }
            eval_completions = 0;
            eval_partials = 0;
        }
    };

    // Multi-target runs earn the dedicated receive thread (overlap is the
    // point); a single-target exchange (probe_target, the baselines' unit
    // probes) pumps the transport inline instead of paying a thread
    // spawn/join and a ring per call.
    std::unique_ptr<ReceiveLoop> receiver;
    if (targets.size() > 1) receiver = std::make_unique<ReceiveLoop>(*transport_, config_);

    // Admission builds and sends the target's whole batch in the fixed
    // global order; because admission itself is in target order, the wire
    // sees the exact same packet sequence at every window size. IPIDs and
    // the SNMP msgID are derived from the target's global index, so a lane
    // probing a slice of a larger list stamps the same IDs a serial run
    // over the full list would.
    auto admit = [&](std::size_t index) {
        util::AllocStageScope admit_stage("admit");
        const std::uint64_t global_index =
            global_indices.empty() ? index : global_indices[index];
        std::uint16_t next_ipid = static_cast<std::uint16_t>(
            config_.ipid_base + global_index * ids_per_target());
        const std::uint32_t slot_id = free_slots.back();
        free_slots.pop_back();
        // Reset the pooled slot in place (a moved-from result is valid but
        // unspecified): the fill loop below rewrites every exchange field.
        InFlightTarget& state = slots[slot_id];
        state.active = true;
        state.index = index;
        state.outstanding = 0;
        state.key_count = 0;
        state.snmp_message_id = 0;
        state.result.target = targets[index];
        state.result.snmp.reset();

        // Flow keys are derived from the same inputs build_probe serializes,
        // so registration needs no re-parse of the packet it just built
        // (request_flow_key over the wire bytes yields these exact keys —
        // the demux tests pin that equivalence).
        const auto target_value = targets[index].value();
        const auto icmp_identifier =
            static_cast<std::uint16_t>(target_value ^ (target_value >> 16));
        auto probe_key = [&](ProtoIndex protocol, std::size_t round) {
            switch (protocol) {
                case ProtoIndex::icmp:
                    return FlowKey{target_value,
                                   static_cast<std::uint8_t>(net::Protocol::icmp),
                                   icmp_identifier, static_cast<std::uint16_t>(round)};
                case ProtoIndex::tcp:
                    return FlowKey{target_value,
                                   static_cast<std::uint8_t>(net::Protocol::tcp),
                                   static_cast<std::uint16_t>(config_.source_port + round),
                                   stack::kProbePort};
                case ProtoIndex::udp:
                default:
                    return FlowKey{target_value,
                                   static_cast<std::uint8_t>(net::Protocol::udp),
                                   static_cast<std::uint16_t>(config_.source_port + round),
                                   stack::kProbePort};
            }
        };

        std::size_t batch_size = 0;
        std::uint32_t send_index = 0;
        for (std::size_t round = 0; round < kRoundsPerProtocol; ++round) {
            for (std::size_t p = 0; p < kProtocolCount; ++p) {
                ProbeExchange& exchange = state.result.probes[p][round];
                exchange.request_ipid = next_ipid++;
                exchange.send_index = send_index++;
                exchange.response.reset();
                net::Bytes& packet = batch[batch_size++];
                const net::Bytes& probe_template = templates[probe_slot(p, round)];
                packet.assign(probe_template.begin(), probe_template.end());
                patch_probe(packet, static_cast<ProtoIndex>(p),
                            patch_bases[probe_slot(p, round)], targets[index],
                            exchange.request_ipid);
                if (config_.keep_request_bytes) {
                    exchange.request.assign(packet.begin(), packet.end());
                } else {
                    exchange.request.clear();
                }
                const FlowKey key = probe_key(static_cast<ProtoIndex>(p), round);
                state.keys[state.key_count++] = key;
                demux.expect(key, SlotRef{slot_id, probe_slot(p, round)});
                ++state.outstanding;
                ++packets_sent_;
            }
        }
        if (config_.send_snmp) {
            state.snmp_message_id = static_cast<std::int32_t>(
                (config_.snmp_message_id_base + global_index) & 0x7FFFFFFF);
            snmp_patch_or_build(batch[batch_size++], targets[index], next_ipid++,
                                state.snmp_message_id);
            const FlowKey key{target_value, static_cast<std::uint8_t>(net::Protocol::udp),
                              static_cast<std::uint16_t>(config_.source_port + 7),
                              snmp::kSnmpPort};
            state.keys[state.key_count++] = key;
            demux.expect(key, SlotRef{slot_id, kSnmpSlot});
            ++state.outstanding;
            ++packets_sent_;
        }
        state.deadline = Clock::now() + config_.response_timeout;
        transport_->send_batch(std::span<const net::Bytes>(batch.data(), batch_size));
        if (receiver) receiver->note_sent();
        in_flight_addresses.insert(target_value);
        ++in_flight_count;
    };

    // Returns true only when `raw` was kept (moved into a probe exchange);
    // false means the caller still owns the buffer and should recycle it
    // back to the transport — strays, quench advisories, parse failures,
    // and SNMP payloads (copied into the decoded response) all come back.
    auto dispatch = [&](net::Bytes& raw) -> bool {
        util::AllocStageScope dispatch_stage("dispatch");
        auto parsed = net::parse_packet(raw);
        if (!parsed) return false;
        // Rate-limit advisories are back-off signals, never probe answers;
        // intercept them before the demux would count them as strays.
        if (const auto* icmp = parsed.value().icmp()) {
            if (const auto* error = std::get_if<net::IcmpError>(icmp);
                error != nullptr && error->type == net::IcmpType::source_quench) {
                ++rate_limit_signals_;
                back_off(/*from_quench=*/true);
                return false;
            }
        }
        auto slot = demux.match(parsed.value());
        if (!slot) return false;
        InFlightTarget& state = slots[slot->target];
        if (!state.active) return false;
        ++responses_;
        if (state.outstanding > 0) --state.outstanding;
        if (slot->slot == kSnmpSlot) {
            if (const auto* udp = parsed.value().udp()) {
                auto response = snmp::DiscoveryResponse::parse(udp->payload);
                // The msgID closes the flow key: a discovery answer must
                // quote the msgID of this target's request.
                if (response && response.value().message_id == state.snmp_message_id) {
                    state.result.snmp = std::move(response).value();
                }
            }
            return false;
        }
        ProbeExchange& exchange =
            state.result.probes[slot->slot % kProtocolCount][slot->slot / kProtocolCount];
        exchange.response = std::move(raw);
        return true;
    };

    bool cancelled = false;
    // Inline-mode (no receive thread) poll scratch: lives across loop
    // passes so the steady state reuses one capacity.
    std::vector<net::Bytes> inline_inbound;
    try {
        util::SpinBackoff backoff(config_.idle_backoff);
        while (completed < targets.size() && !cancelled) {
            if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
            bool progressed = false;

            const std::size_t window = current_window();
            while (in_flight_count < window && !free_slots.empty() &&
                   next_target - next_emit < holdback_limit &&
                   next_target < targets.size() &&
                   !in_flight_addresses.contains(targets[next_target].value())) {
                // Pacing gate: without tokens for the whole batch, skip
                // admission this pass — the loop keeps dispatching inbound
                // packets and expiring deadlines, then naps in the idle
                // backoff until the bucket refills. Never blocks.
                if (pacer_ &&
                    !pacer_->try_acquire(static_cast<double>(ids_per_target()))) {
                    break;
                }
                admit(next_target++);
                progressed = true;
            }

            // A transport that can prove it holds nothing (the simulation
            // after loss) lets us fail outstanding slots without burning
            // the timeout. With a receive thread, starved() is only true
            // when the drained observation covers every send so far and
            // the ring is empty; inline, the direct poll's emptiness plus
            // drained() is the same proof.
            bool starved = false;
            if (receiver) {
                net::Bytes raw;
                while (receiver->try_pop(raw)) {
                    if (!dispatch(raw)) transport_->recycle(std::move(raw));
                    progressed = true;
                }
                starved = receiver->starved();
            } else {
                inline_inbound.clear();
                transport_->poll_responses_into(config_.poll_interval, inline_inbound);
                for (net::Bytes& raw : inline_inbound) {
                    if (!dispatch(raw)) transport_->recycle(std::move(raw));
                    progressed = true;
                }
                starved = inline_inbound.empty() && transport_->drained();
            }
            const auto now = Clock::now();
            for (std::uint32_t slot_id = 0;
                 in_flight_count > 0 && slot_id < slots.size(); ++slot_id) {
                InFlightTarget& state = slots[slot_id];
                if (!state.active) continue;
                if (state.outstanding == 0 || starved || now >= state.deadline) {
                    // Loss-shaped = some round of a spoken protocol vanished
                    // (the paper's partial-responsiveness notion). Anything
                    // that answered without intra-protocol gaps is clean;
                    // protocol-level silence alone stays neutral.
                    const Completion completion =
                        state.result.partially_responsive() ? Completion::partial
                        : state.result.any_response()       ? Completion::clean
                                                            : Completion::silent;
                    if (state.outstanding > 0) {
                        // Exact-key erases (answered slots are already gone
                        // from the table; their erases are no-ops).
                        for (std::uint16_t k = 0; k < state.key_count; ++k) {
                            demux.forget(state.keys[k]);
                        }
                    }
                    in_flight_addresses.erase(state.result.target.value());
                    HoldbackEntry& entry = holdback[state.index % holdback_limit];
                    entry.result = std::move(state.result);
                    entry.present = true;
                    state.active = false;
                    free_slots.push_back(slot_id);
                    --in_flight_count;
                    ++completed;
                    on_completion(completion);
                    progressed = true;
                }
            }

            // In-order emission: a completed target leaves as soon as every
            // predecessor has left, overlapping downstream consumption with
            // the probing of its successors. An emit returning false
            // cancels the run: stop admitting, abandon the in-flight rest.
            while (next_emit < next_target && !cancelled) {
                HoldbackEntry& entry = holdback[next_emit % holdback_limit];
                if (!entry.present) break;
                entry.present = false;
                TargetProbeResult result = std::move(entry.result);
                ++next_emit;
                cancelled = !emit(next_emit - 1, std::move(result));
            }

            if (progressed) {
                backoff.reset();
            } else if (receiver) {
                // Inline mode already blocked in poll_responses() above;
                // only the threaded scheduler needs its own pacing.
                backoff.pause();
            }
        }
    } catch (...) {
        // Unblock and collapse the receiver before unwinding; a receiver
        // error would otherwise be lost (the scheduler's exception wins).
        try {
            if (receiver) receiver->stop_and_join();
        } catch (...) {
        }
        strays_ += demux.stray_responses();
        throw;
    }

    // Strays are settled before the join: a receiver error rethrown by
    // stop_and_join() must not skip the accumulation (the catch path above
    // preserves it the same way).
    strays_ += demux.stray_responses();
    if (receiver) receiver->stop_and_join();
}

}  // namespace lfp::probe
