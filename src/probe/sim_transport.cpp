#include "probe/sim_transport.hpp"

#include <thread>

namespace lfp::probe {

void SimTransport::send_batch(std::span<const net::Bytes> packets) {
    const auto now = Clock::now();
    auto responses = internet_->transact_batch(packets);
    for (auto& response : responses) {
        // The jitter stream advances once per *response* in send order, so
        // delivery timing never perturbs simulation state determinism.
        if (!response) continue;
        auto delay = options_.rtt;
        if (options_.jitter > 0 && options_.rtt.count() > 0) {
            const double swing = options_.jitter * (2.0 * jitter_rng_.uniform() - 1.0);
            delay = std::chrono::microseconds(static_cast<std::int64_t>(
                static_cast<double>(options_.rtt.count()) * (1.0 + swing)));
        }
        pending_.push(Pending{now + delay, sequence_++, std::move(*response)});
    }
}

std::vector<net::Bytes> SimTransport::poll_responses(std::chrono::milliseconds timeout) {
    std::vector<net::Bytes> matured;
    if (pending_.empty()) return matured;  // drained: nothing will ever arrive

    auto now = Clock::now();
    if (pending_.top().ready_at > now) {
        const auto wait = std::min<Clock::duration>(pending_.top().ready_at - now, timeout);
        if (wait > Clock::duration::zero()) std::this_thread::sleep_for(wait);
        now = Clock::now();
    }
    while (!pending_.empty() && pending_.top().ready_at <= now) {
        // top() is const; moving out is safe because the pop follows
        // immediately and the heap never compares packet contents.
        matured.push_back(std::move(const_cast<Pending&>(pending_.top()).packet));
        pending_.pop();
    }
    return matured;
}

}  // namespace lfp::probe
