#include "probe/sim_transport.hpp"

// Header-only implementation; translation unit anchors the target.
namespace lfp::probe {}
