#include "probe/sim_transport.hpp"

#include <algorithm>
#include <thread>

namespace lfp::probe {

void SimTransport::send_batch(std::span<const net::Bytes> packets) {
    const auto now = Clock::now();
    // The simulation round trip runs outside the queue mutex: it can be
    // compute-heavy and the receive thread must stay free to drain matured
    // responses meanwhile.
    auto responses = internet_->transact_batch(packets);
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& response : responses) {
        // The jitter stream advances once per *response* in send order, so
        // delivery timing never perturbs simulation state determinism.
        if (!response) continue;
        auto delay = options_.rtt;
        if (options_.jitter > 0 && options_.rtt.count() > 0) {
            const double swing = options_.jitter * (2.0 * jitter_rng_.uniform() - 1.0);
            delay = std::chrono::microseconds(static_cast<std::int64_t>(
                static_cast<double>(options_.rtt.count()) * (1.0 + swing)));
        }
        pending_.push(Pending{now + delay, sequence_++, std::move(*response)});
    }
}

std::vector<net::Bytes> SimTransport::poll_responses(std::chrono::milliseconds timeout) {
    std::vector<net::Bytes> matured;

    // Decide how long to wait under the lock, but never sleep holding it —
    // the sender must be able to enqueue while we wait for maturity.
    Clock::duration wait = Clock::duration::zero();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (pending_.empty()) return matured;  // drained: nothing will ever arrive
        const auto now = Clock::now();
        if (pending_.top().ready_at > now) {
            wait = std::min<Clock::duration>(pending_.top().ready_at - now, timeout);
        }
    }
    if (wait > Clock::duration::zero()) std::this_thread::sleep_for(wait);

    const auto now = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    while (!pending_.empty() && pending_.top().ready_at <= now) {
        // top() is const; moving out is safe because the pop follows
        // immediately and the heap never compares packet contents.
        matured.push_back(std::move(const_cast<Pending&>(pending_.top()).packet));
        pending_.pop();
    }
    return matured;
}

std::optional<std::uint64_t> SimTransport::backend_hint(net::IPv4Address target) const {
    const std::size_t router = internet_->topology().find_by_interface(target);
    if (router == sim::Topology::npos) return std::nullopt;
    return static_cast<std::uint64_t>(router);
}

}  // namespace lfp::probe
