// Raw-socket transport for probing live targets (Linux, requires
// CAP_NET_RAW). The same campaign and classification pipeline that runs in
// simulation runs over this transport unchanged.
//
// Responses are matched to requests by protocol-specific keys: ICMP echo
// identifier, the quoted datagram inside ICMP errors, TCP/UDP port pairs.
#pragma once

#include <chrono>
#include <string>

#include "probe/transport.hpp"

namespace lfp::probe {

class RawSocketTransport final : public ProbeTransport {
  public:
    struct Options {
        std::chrono::milliseconds timeout{1000};
        /// When true, no sockets are opened and every transact() times out;
        /// lets callers exercise the code path without privileges.
        bool dry_run = false;
    };

    RawSocketTransport() : RawSocketTransport(Options{}) {}
    explicit RawSocketTransport(Options options);
    ~RawSocketTransport() override;

    /// True if all sockets opened (CAP_NET_RAW present and platform
    /// supported); false puts the transport in dry-run behaviour.
    [[nodiscard]] bool ready() const noexcept { return ready_; }
    [[nodiscard]] const std::string& status() const noexcept { return status_; }

    std::optional<net::Bytes> transact(std::span<const std::uint8_t> packet) override;

    [[nodiscard]] net::IPv4Address vantage_address() const override { return vantage_; }

  private:
    bool open_sockets();
    void close_sockets() noexcept;
    std::optional<net::Bytes> wait_for_match(const net::ParsedPacket& request);
    static bool response_matches(const net::ParsedPacket& request,
                                 const net::ParsedPacket& candidate);

    Options options_;
    bool ready_ = false;
    std::string status_;
    net::IPv4Address vantage_;
    int send_fd_ = -1;
    int recv_icmp_fd_ = -1;
    int recv_tcp_fd_ = -1;
    int recv_udp_fd_ = -1;
};

}  // namespace lfp::probe
