// Raw-socket transport for probing live targets (Linux, requires
// CAP_NET_RAW). The same campaign and classification pipeline that runs in
// simulation runs over this transport unchanged.
//
// The transport is a dumb pipe: send_batch() writes raw IPv4 packets,
// poll_responses() drains whatever the ICMP/TCP/UDP receive sockets have
// captured. Matching inbound packets to probes (ICMP echo identifier, the
// quoted datagram inside ICMP errors, TCP/UDP port pairs) is done by the
// caller's demultiplexer — probe/demux.hpp.
//
// The one-sender/one-receiver threading contract holds without locks: sends
// and receives use disjoint file descriptors, so the scheduler thread's
// sendto() and the receive thread's poll()/recvfrom() never touch shared
// state (send_failures_ is written by the sending thread only).
#pragma once

#include <chrono>
#include <string>

#include "probe/transport.hpp"

namespace lfp::probe {

class RawSocketTransport final : public ProbeTransport {
  public:
    struct Options {
        std::chrono::milliseconds timeout{1000};
        /// When true, no sockets are opened, sends vanish, and polls return
        /// empty; lets callers exercise the code path without privileges.
        bool dry_run = false;
    };

    RawSocketTransport() : RawSocketTransport(Options{}) {}
    explicit RawSocketTransport(Options options);
    ~RawSocketTransport() override;

    /// True if all sockets opened (CAP_NET_RAW present and platform
    /// supported); false puts the transport in dry-run behaviour.
    [[nodiscard]] bool ready() const noexcept { return ready_; }
    [[nodiscard]] const std::string& status() const noexcept { return status_; }

    /// Packets sendto() rejected or truncated (filtered routes, bad
    /// destinations…) after retries were exhausted. Those probes never
    /// reached the wire: their slots will run into the response timeout,
    /// and a climbing counter here is the tell.
    [[nodiscard]] std::uint64_t send_failures() const noexcept { return send_failures_; }

    /// Transient backpressure events (EAGAIN/EWOULDBLOCK/ENOBUFS/EINTR)
    /// absorbed by the capped-backoff retry loop in send_batch(). These are
    /// kernel buffer pressure, not packet loss: the packet was eventually
    /// sent (or counted in send_failures() once retries ran out). A
    /// climbing counter with flat send_failures() means the pacer is
    /// outrunning the NIC and LFP_PPS should come down.
    [[nodiscard]] std::uint64_t transient_send_errors() const noexcept {
        return transient_send_errors_;
    }

    void send_batch(std::span<const net::Bytes> packets) override;

    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) override;

    /// A live network can always surprise us — except when the transport
    /// never opened sockets, in which case no response can ever arrive.
    [[nodiscard]] bool drained() const override { return !ready_; }

    [[nodiscard]] net::IPv4Address vantage_address() const override { return vantage_; }

    [[nodiscard]] std::chrono::milliseconds transact_timeout() const override {
        return options_.timeout;
    }

  private:
    bool open_sockets();
    void close_sockets() noexcept;

    Options options_;
    bool ready_ = false;
    std::string status_;
    std::uint64_t send_failures_ = 0;
    std::uint64_t transient_send_errors_ = 0;
    net::IPv4Address vantage_;
    int send_fd_ = -1;
    int recv_icmp_fd_ = -1;
    int recv_tcp_fd_ = -1;
    int recv_udp_fd_ = -1;
};

}  // namespace lfp::probe
