// Raw-socket transport for probing live targets (Linux, requires
// CAP_NET_RAW). The same campaign and classification pipeline that runs in
// simulation runs over this transport unchanged.
//
// The transport is a dumb pipe: send_batch() writes raw IPv4 packets,
// poll_responses() drains whatever the ICMP/TCP/UDP receive sockets have
// captured. Matching inbound packets to probes (ICMP echo identifier, the
// quoted datagram inside ICMP errors, TCP/UDP port pairs) is done by the
// caller's demultiplexer — probe/demux.hpp.
//
// The syscall layer itself is pluggable (probe/wire.hpp): by default the
// transport runs the batched RawWireBackend — the whole in-flight window
// flushed with one sendmmsg, ready sockets drained with one recvmmsg into
// pre-pinned slabs — with LFP_WIRE_BACKEND=serial falling back to the
// sendto-per-packet path. Inbound packet buffers come from a BufferPool
// owned by the receive thread; the scheduler returns consumed buffers
// through recycle(), which routes them back across the thread boundary over
// an SPSC ring, so the steady-state receive path allocates nothing.
//
// One lane per source address: for_source() builds a transport bound to a
// specific vantage address (and optionally interface), so a CensusPlan
// can map each of its vantage lanes onto a distinct source on a
// multi-homed host — every lane owns its own socket set and sees only its
// own responses.
//
// The one-sender/one-receiver threading contract holds without locks: sends
// and receives use disjoint file descriptors, counters are split by side,
// and the recycle path is a single-producer/single-consumer ring.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "probe/transport.hpp"
#include "probe/wire.hpp"
#include "util/arena.hpp"
#include "util/spsc_ring.hpp"

namespace lfp::probe {

class RawSocketTransport final : public ProbeTransport {
  public:
    struct Options {
        std::chrono::milliseconds timeout{1000};
        /// When true, no sockets are opened, sends vanish, and polls return
        /// empty; lets callers exercise the code path without privileges.
        bool dry_run = false;
        /// Syscall-layer knobs (backend mode, batch depth, source address,
        /// interface). Defaults honour LFP_WIRE_BACKEND / LFP_WIRE_BATCH.
        WireConfig wire = WireConfig::from_env();
    };

    RawSocketTransport() : RawSocketTransport(Options{}) {}
    explicit RawSocketTransport(Options options);
    ~RawSocketTransport() override;

    /// A transport lane bound to `source` (dotted quad) and optionally
    /// `interface`: its sends are stamped from that vantage and its receive
    /// sockets are bound to it, so concurrent lanes never see each other's
    /// traffic. Env-level wire knobs still apply.
    [[nodiscard]] static std::unique_ptr<RawSocketTransport> for_source(
        const std::string& source, const std::string& interface = {});

    /// One lane per entry of LFP_WIRE_SOURCES (comma-separated source
    /// addresses) — the env-driven way to hand CensusPlan a multi-homed
    /// vantage set. Empty when the variable is unset or empty.
    [[nodiscard]] static std::vector<std::unique_ptr<RawSocketTransport>> lanes_from_env();

    /// True if all sockets opened (CAP_NET_RAW present and platform
    /// supported); false puts the transport in dry-run behaviour.
    [[nodiscard]] bool ready() const noexcept { return ready_; }
    [[nodiscard]] const std::string& status() const noexcept { return status_; }

    /// Packets the wire layer rejected (filtered routes, bad destinations…)
    /// after retries were exhausted. Those probes never reached the wire:
    /// their slots will run into the response timeout, and a climbing
    /// counter here is the tell.
    [[nodiscard]] std::uint64_t send_failures() const noexcept {
        return backend_ ? backend_->counters().send_failures : 0;
    }

    /// Transient backpressure events (EAGAIN/EWOULDBLOCK/ENOBUFS/EINTR)
    /// absorbed by the capped-backoff retry loop. These are kernel buffer
    /// pressure, not packet loss: the packet was eventually sent (or
    /// counted in send_failures() once retries ran out). A climbing counter
    /// with flat send_failures() means the pacer is outrunning the NIC and
    /// LFP_PPS should come down.
    [[nodiscard]] std::uint64_t transient_send_errors() const noexcept {
        return backend_ ? backend_->counters().transient_send_errors : 0;
    }

    /// The syscall backend in force (null in dry-run) — introspection for
    /// tests and ops dashboards.
    [[nodiscard]] const WireBackend* backend() const noexcept { return backend_.get(); }

    /// Receive-pool statistics (hits mean the zero-allocation steady state
    /// is holding). Receiver-thread values; read when quiescent.
    [[nodiscard]] const util::BufferPool& receive_pool() const noexcept { return pool_; }

    void send_batch(std::span<const net::Bytes> packets) override;

    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) override;
    void poll_responses_into(std::chrono::milliseconds timeout,
                             std::vector<net::Bytes>& out) override;
    void recycle(net::Bytes&& buffer) override;

    /// A live network can always surprise us — except when the transport
    /// never opened sockets, in which case no response can ever arrive.
    [[nodiscard]] bool drained() const override { return !ready_; }

    [[nodiscard]] net::IPv4Address vantage_address() const override { return vantage_; }

    [[nodiscard]] std::chrono::milliseconds transact_timeout() const override {
        return options_.timeout;
    }

  private:
    Options options_;
    bool ready_ = false;
    std::string status_;
    net::IPv4Address vantage_;
    std::unique_ptr<WireBackend> backend_;
    /// Receive buffers, owned by the receive thread; refilled from
    /// recycle_ring_ at every poll.
    util::BufferPool pool_;
    /// Scheduler → receiver buffer returns (single producer, single
    /// consumer, matching the transport threading contract).
    util::SpscRing<net::Bytes> recycle_ring_;
    /// High-water mark of packets per poll; sizes the vector the legacy
    /// poll_responses() path returns.
    std::size_t last_poll_size_ = 0;
};

}  // namespace lfp::probe
