/// \file
/// The wire engine: pluggable syscall backends beneath RawSocketTransport.
///
/// A WireBackend is the thin layer that actually crosses the kernel
/// boundary — it owns file descriptors, pinned iovec/mmsghdr arrays, and
/// receive slabs, and nothing else. Everything above it (flow demux,
/// windowing, retry scheduling) lives in the transport/campaign layers and
/// is backend-agnostic, so swapping sendto-per-packet for batched
/// sendmmsg/recvmmsg (or, later, io_uring) never changes what reaches the
/// wire, only how many syscalls it costs.
///
/// Two backends implement the contract:
///   - RawWireBackend: IPPROTO_RAW send + per-protocol raw receive sockets
///     (CAP_NET_RAW) — the live-probing backend. Batched mode flushes the
///     whole in-flight window with one sendmmsg and drains each ready
///     receive socket with one recvmmsg.
///   - DgramWireBackend: plain UDP sockets, no privileges — the CI/test
///     backend. Its batched mode additionally coalesces runs of equal-size
///     packets into UDP GSO super-datagrams (and splits GRO-coalesced
///     reads), which is where batching actually wins an order of magnitude:
///     on modern kernels the syscall entry itself is cheap, so one
///     packet-per-mmsghdr only saves ~10%, while GSO/GRO amortises the
///     whole per-datagram network-stack traversal.
///
/// \par Threading
/// The backend inherits the transport's one-sender/one-receiver contract:
/// send() is called only from the sender thread, receive() only from the
/// receiver thread, and the two touch disjoint state (disjoint fds for the
/// raw backend; for the dgram backend the shared fd is safe — send and
/// recv on one UDP socket are independent kernel paths). Counters are
/// likewise split: the send-side fields are written only under send(), the
/// receive-side fields only under receive(); read them when the owning
/// thread is quiescent (tests, teardown) or accept a stale snapshot.
///
/// \par Buffer discipline
/// receive() never hands out freshly allocated packets in steady state: the
/// kernel fills the backend's pinned slabs, and each packet is copied into
/// a buffer drawn from the caller's BufferPool. Callers recycle consumed
/// buffers back into the pool (RawSocketTransport::recycle routes them
/// across the thread boundary), so after warm-up the receive path's heap
/// traffic is zero — the same discipline the probe template cache enforces
/// on the send path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "net/packet_builder.hpp"
#include "util/arena.hpp"

namespace lfp::probe {

/// How a backend crosses the syscall boundary, selected per construction
/// (LFP_WIRE_BACKEND for the env-driven paths).
enum class WireMode : std::uint8_t {
    serial,   ///< one sendto()/recv() per packet — the baseline path
    batched,  ///< sendmmsg/recvmmsg (+ GSO/GRO where the socket supports it)
};

/// Construction-time knobs shared by every backend.
struct WireConfig {
    WireMode mode = WireMode::batched;
    /// Packets per sendmmsg/recvmmsg flush; clamped to [1, kMaxBatch]. The
    /// campaign's in-flight window rarely exceeds this, so one admission
    /// usually costs one syscall.
    std::size_t batch = 64;
    /// Bytes per pinned receive slab slot. Raw sockets need a full 64 KB
    /// (an IP datagram can be that big); the dgram backend sizes slabs to
    /// hold a maximal GRO aggregate.
    std::size_t slab_bytes = 65536;
    /// Source address to bind ("" = kernel default). One lane per source:
    /// this is what maps CensusPlan vantage lanes onto multi-homed hosts.
    std::string source;
    /// Interface to bind (SO_BINDTODEVICE, "" = any).
    std::string interface;

    static constexpr std::size_t kMaxBatch = 1024;

    /// Defaults overlaid with LFP_WIRE_BACKEND ("serial" | "batched") and
    /// LFP_WIRE_BATCH (flush depth). Unknown backend names and unparseable
    /// depths fall back to the defaults — a live probe run should degrade,
    /// not die, on a typo.
    [[nodiscard]] static WireConfig from_env();

    /// `batch` clamped into its valid range.
    [[nodiscard]] std::size_t clamped_batch() const noexcept;
};

/// The syscall-boundary contract. See the file header for threading and
/// buffer discipline.
class WireBackend {
  public:
    /// Per-backend syscall/outcome tallies. Send-side fields are owned by
    /// the sender thread, receive-side fields by the receiver thread.
    struct Counters {
        // -- send side --
        std::uint64_t send_syscalls = 0;    ///< sendto/sendmmsg calls issued
        std::uint64_t packets_sent = 0;     ///< packets accepted by the kernel
        std::uint64_t gso_segments = 0;     ///< packets that rode a GSO super-datagram
        std::uint64_t transient_send_errors = 0;  ///< EAGAIN-class retries absorbed
        std::uint64_t send_failures = 0;    ///< packets dropped after retries
        // -- receive side --
        std::uint64_t recv_syscalls = 0;    ///< recv/recvmmsg calls issued
        std::uint64_t packets_received = 0; ///< whole packets handed to the caller
        std::uint64_t gro_splits = 0;       ///< packets recovered by splitting GRO aggregates
        std::uint64_t truncated = 0;        ///< datagrams larger than a slab (dropped tail)
    };

    virtual ~WireBackend() = default;
    WireBackend() = default;
    WireBackend(const WireBackend&) = delete;
    WireBackend& operator=(const WireBackend&) = delete;

    /// True when every socket opened and configured; false leaves the
    /// backend inert (sends vanish, receives return nothing) with the
    /// reason in status().
    [[nodiscard]] virtual bool ready() const noexcept = 0;
    [[nodiscard]] virtual const std::string& status() const noexcept = 0;

    /// Puts `packets` on the wire in span order. Returns only when every
    /// packet was either delivered to the kernel or counted in
    /// counters().send_failures — transient backpressure is absorbed by a
    /// capped exponential backoff (counted per retry), hard per-packet
    /// errors skip exactly the offending packet. Sender thread only.
    virtual void send(std::span<const net::Bytes> packets) = 0;

    /// Appends whole inbound packets (buffers drawn from `pool`) to `out`
    /// in arrival order, waiting at most `timeout` when nothing is pending.
    /// Returns the number of packets appended. Receiver thread only; `pool`
    /// must be owned by the same thread.
    virtual std::size_t receive(std::chrono::milliseconds timeout, util::BufferPool& pool,
                                std::vector<net::Bytes>& out) = 0;

    /// The source address packets leave from (the transport's vantage).
    [[nodiscard]] virtual net::IPv4Address local_address() const noexcept = 0;

    [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  protected:
    Counters counters_;
};

/// Drives one packet's send attempts through the shared transient-error
/// policy: `attempt` performs the syscall and returns >= 0 on success or
/// -1 with errno set. EAGAIN/EWOULDBLOCK/ENOBUFS/EINTR retry under a
/// capped exponential backoff (each retry counted in `transient_errors`);
/// any other errno — or retry exhaustion — counts one `failure`. Returns
/// whether the packet was delivered. Exposed (rather than private to the
/// backends) so the policy itself is unit-testable without a wedgeable
/// socket.
bool send_with_retry(const std::function<long()>& attempt, std::uint64_t& transient_errors,
                     std::uint64_t& failures);

/// Plain-UDP backend: no privileges needed, loopback-testable, and the
/// vehicle for the GSO/GRO batched fast path. The socket binds
/// `config.source` (default 127.0.0.1) on an ephemeral port; point it at
/// its peer with set_peer() before sending.
class DgramWireBackend final : public WireBackend {
  public:
    explicit DgramWireBackend(WireConfig config);
    ~DgramWireBackend() override;

    [[nodiscard]] bool ready() const noexcept override { return ready_; }
    [[nodiscard]] const std::string& status() const noexcept override { return status_; }
    [[nodiscard]] net::IPv4Address local_address() const noexcept override { return local_; }
    /// The ephemeral port the socket bound — peers aim set_peer() here.
    [[nodiscard]] std::uint16_t local_port() const noexcept { return local_port_; }

    /// Fixes the destination (connect()): every subsequent send() goes
    /// here, and the kernel filters inbound traffic to this peer — which is
    /// what makes two lanes on one loopback provably isolated.
    bool set_peer(net::IPv4Address address, std::uint16_t port);

    /// True when the kernel accepted UDP_SEGMENT/UDP_GRO on this socket
    /// (batched mode falls back to plain sendmmsg/recvmmsg otherwise).
    [[nodiscard]] bool gso_available() const noexcept { return gso_ok_; }
    [[nodiscard]] bool gro_available() const noexcept { return gro_ok_; }

    void send(std::span<const net::Bytes> packets) override;
    std::size_t receive(std::chrono::milliseconds timeout, util::BufferPool& pool,
                        std::vector<net::Bytes>& out) override;

  private:
    struct Pinned;  ///< iovec/mmsghdr/slab arrays (platform-specific)

    void send_serial(std::span<const net::Bytes> packets);
    void send_batched(std::span<const net::Bytes> packets);

    WireConfig config_;
    bool ready_ = false;
    bool gso_ok_ = false;
    bool gro_ok_ = false;
    std::string status_;
    net::IPv4Address local_;
    std::uint16_t local_port_ = 0;
    int fd_ = -1;
    std::unique_ptr<Pinned> pinned_;
};

/// Raw-socket backend (Linux, CAP_NET_RAW): IPPROTO_RAW + IP_HDRINCL for
/// sends, one raw receive socket per probed protocol. Receive sockets bind
/// `config.source` when set, so concurrent lanes on a multi-homed host each
/// see only their own vantage's traffic.
class RawWireBackend final : public WireBackend {
  public:
    explicit RawWireBackend(WireConfig config);
    ~RawWireBackend() override;

    [[nodiscard]] bool ready() const noexcept override { return ready_; }
    [[nodiscard]] const std::string& status() const noexcept override { return status_; }
    [[nodiscard]] net::IPv4Address local_address() const noexcept override { return local_; }

    void send(std::span<const net::Bytes> packets) override;
    std::size_t receive(std::chrono::milliseconds timeout, util::BufferPool& pool,
                        std::vector<net::Bytes>& out) override;

  private:
    struct Pinned;

    void send_serial(std::span<const net::Bytes> packets);
    void send_batched(std::span<const net::Bytes> packets);
    bool open_sockets();
    void close_sockets() noexcept;

    WireConfig config_;
    bool ready_ = false;
    std::string status_;
    net::IPv4Address local_;
    int send_fd_ = -1;
    int recv_fds_[3] = {-1, -1, -1};  ///< ICMP, TCP, UDP
    std::unique_ptr<Pinned> pinned_;
};

}  // namespace lfp::probe
