// Response demultiplexer: matches raw inbound packets back to outstanding
// probe slots by flow key, so receives can be fully decoupled from sends.
//
// Every LFP probe defines a flow key in *request orientation*:
//   ICMP echo   — (target, icmp, identifier, sequence)
//   TCP         — (target, tcp, source port, destination port)
//   UDP / SNMP  — (target, udp, source port, destination port)
// A response maps to the same key by swapping the port pair (or reading the
// echoed id/seq); ICMP errors are keyed by the quoted offending datagram.
// Responses from addresses other than the probed target never match — LFP
// probes interfaces directly and discards ICMP errors from intermediate
// routers.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet_builder.hpp"
#include "util/flat_hash.hpp"

namespace lfp::probe {

struct FlowKey {
    std::uint32_t target = 0;  ///< probed address (request destination)
    std::uint8_t protocol = 0;
    std::uint16_t local = 0;   ///< our src port / ICMP identifier
    std::uint16_t remote = 0;  ///< probed port / ICMP sequence

    friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
    std::size_t operator()(const FlowKey& key) const noexcept {
        std::uint64_t packed = (static_cast<std::uint64_t>(key.target) << 32) |
                               ((static_cast<std::uint64_t>(key.protocol) << 24) ^
                                (static_cast<std::uint64_t>(key.local) << 16) ^ key.remote);
        // splitmix64 finalizer — cheap and well distributed.
        packed = (packed ^ (packed >> 30)) * 0xBF58476D1CE4E5B9ULL;
        packed = (packed ^ (packed >> 27)) * 0x94D049BB133111EBULL;
        return static_cast<std::size_t>(packed ^ (packed >> 31));
    }
};

/// Flow key of an outbound probe, or nullopt for unkeyable packets.
[[nodiscard]] std::optional<FlowKey> request_flow_key(const net::ParsedPacket& request);

/// Flow key an inbound packet answers (request orientation), or nullopt when
/// the packet cannot be an answer to any LFP probe. Handles direct replies
/// (echo reply, TCP RST, UDP) and ICMP errors quoting the original datagram;
/// errors must originate from the probed address itself.
[[nodiscard]] std::optional<FlowKey> response_flow_key(const net::ParsedPacket& response);

/// Identifies the probe slot a response resolves: target is an opaque caller
/// handle (the engine uses the target's admission index), slot is the
/// per-target probe position (protocol round or the trailing SNMP probe).
struct SlotRef {
    std::uint64_t target = 0;
    std::uint16_t slot = 0;

    friend bool operator==(const SlotRef&, const SlotRef&) = default;
};

class ResponseDemux {
  public:
    /// Pre-sizes the flow table so `expected` concurrent registrations never
    /// rehash (and therefore never allocate) on the hot path.
    void reserve(std::size_t expected) { expected_.reserve(expected); }

    /// Registers an outstanding probe. Overwrites any previous registration
    /// of the same key (callers guarantee in-flight keys are unique).
    void expect(const FlowKey& key, SlotRef slot);

    /// Matches a parsed inbound packet to an outstanding slot, consuming the
    /// registration. Unmatched packets return nullopt and count as strays.
    std::optional<SlotRef> match(const net::ParsedPacket& response);

    /// Drops one outstanding registration by its exact key — O(1). Engines
    /// that remember the keys they registered (the streaming campaign keeps
    /// them per in-flight slot) use this on timeout instead of the
    /// whole-table scan in cancel_target().
    void forget(const FlowKey& key) { expected_.erase(key); }

    /// Drops every outstanding registration for `target` (timeout/cancel).
    /// Scans the whole table; prefer forget() when the keys are known.
    void cancel_target(std::uint64_t target);

    [[nodiscard]] std::size_t outstanding() const noexcept { return expected_.size(); }
    [[nodiscard]] std::uint64_t stray_responses() const noexcept { return strays_; }

  private:
    util::FlatMap<FlowKey, SlotRef, FlowKeyHash> expected_;
    std::uint64_t strays_ = 0;
};

}  // namespace lfp::probe
