// The LFP probe campaign (paper §3.3): per target, nine single-packet
// probes — three ICMP echoes, two TCP ACKs plus one TCP SYN (non-zero ack
// field) to a closed port, three UDP datagrams to a closed port — and one
// SNMPv3 discovery request. Probes are interleaved across protocols in a
// fixed global send order so cross-protocol IPID counter sharing is
// observable.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "probe/transport.hpp"
#include "snmp/snmpv3.hpp"

namespace lfp::probe {

/// Index order for per-protocol arrays throughout the core library.
enum class ProtoIndex : std::uint8_t { icmp = 0, tcp = 1, udp = 2 };
constexpr std::size_t kProtocolCount = 3;
constexpr std::size_t kRoundsPerProtocol = 3;

/// One request/response exchange.
struct ProbeExchange {
    std::uint16_t request_ipid = 0;
    std::uint32_t send_index = 0;  ///< global order within the target's probes
    net::Bytes request;
    std::optional<net::Bytes> response;

    [[nodiscard]] bool responded() const noexcept { return response.has_value(); }
};

/// Everything LFP learned about one target IP.
struct TargetProbeResult {
    net::IPv4Address target;
    /// probes[protocol][round]
    std::array<std::array<ProbeExchange, kRoundsPerProtocol>, kProtocolCount> probes;
    std::optional<snmp::DiscoveryResponse> snmp;

    [[nodiscard]] std::size_t responses_for(ProtoIndex protocol) const;
    [[nodiscard]] bool protocol_responsive(ProtoIndex protocol) const {
        return responses_for(protocol) == kRoundsPerProtocol;
    }
    [[nodiscard]] std::size_t responsive_protocol_count() const;
    [[nodiscard]] bool fully_responsive() const { return responsive_protocol_count() == 3; }
    [[nodiscard]] bool any_response() const;
};

class Campaign {
  public:
    struct Config {
        std::uint16_t icmp_payload_bytes = 56;  ///< 84-byte echo requests
        std::uint16_t udp_payload_bytes = 12;   ///< all-zero payload (§3.3)
        std::uint16_t source_port = 43211;
        std::uint8_t probe_ttl = 64;
        bool send_snmp = true;
    };

    explicit Campaign(ProbeTransport& transport) : Campaign(transport, Config{}) {}
    Campaign(ProbeTransport& transport, Config config)
        : transport_(&transport), config_(config) {}

    /// Runs the full 9+1 probe exchange against one target.
    TargetProbeResult probe_target(net::IPv4Address target);

    /// Probes every target in order.
    std::vector<TargetProbeResult> run(std::span<const net::IPv4Address> targets);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }
    [[nodiscard]] std::uint64_t responses_received() const noexcept { return responses_; }

  private:
    net::Bytes build_probe(net::IPv4Address target, ProtoIndex protocol, std::size_t round,
                           std::uint16_t ipid);

    ProbeTransport* transport_;
    Config config_;
    std::uint16_t next_ipid_ = 0x3100;
    std::uint32_t snmp_message_id_ = 0x51000;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t responses_ = 0;
};

}  // namespace lfp::probe
