// The LFP probe campaign (paper §3.3): per target, nine single-packet
// probes — three ICMP echoes, two TCP ACKs plus one TCP SYN (non-zero ack
// field) to a closed port, three UDP datagrams to a closed port — and one
// SNMPv3 discovery request. Probes are interleaved across protocols in a
// fixed global send order so cross-protocol IPID counter sharing is
// observable.
//
// The campaign engine is batched and asynchronous: each target's probes are
// sent as one ordered batch without waiting for responses, and a window of
// up to Config::window targets is kept in flight while inbound packets are
// demultiplexed back to their probe slots by flow key. Targets are admitted
// strictly in input order, so the global send order — the property the
// IPID-sharing features depend on — is identical at every window size, and
// a windowed run produces byte-identical results to a serial one (window=1)
// on any deterministic transport.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "probe/transport.hpp"
#include "snmp/snmpv3.hpp"

namespace lfp::probe {

/// Index order for per-protocol arrays throughout the core library.
enum class ProtoIndex : std::uint8_t { icmp = 0, tcp = 1, udp = 2 };
constexpr std::size_t kProtocolCount = 3;
constexpr std::size_t kRoundsPerProtocol = 3;

/// One request/response exchange.
struct ProbeExchange {
    std::uint16_t request_ipid = 0;
    std::uint32_t send_index = 0;  ///< global order within the target's probes
    net::Bytes request;
    std::optional<net::Bytes> response;

    [[nodiscard]] bool responded() const noexcept { return response.has_value(); }

    friend bool operator==(const ProbeExchange&, const ProbeExchange&) = default;
};

/// Everything LFP learned about one target IP.
struct TargetProbeResult {
    net::IPv4Address target;
    /// probes[protocol][round]
    std::array<std::array<ProbeExchange, kRoundsPerProtocol>, kProtocolCount> probes;
    std::optional<snmp::DiscoveryResponse> snmp;

    [[nodiscard]] std::size_t responses_for(ProtoIndex protocol) const;

    /// True only when *all* kRoundsPerProtocol rounds of `protocol` drew a
    /// response. Full per-protocol responsiveness is what the Table 3
    /// population counts and the full-signature extraction require; use
    /// partially_responsive() for the partial-signature analyses.
    [[nodiscard]] bool protocol_responsive(ProtoIndex protocol) const {
        return responses_for(protocol) == kRoundsPerProtocol;
    }

    /// True when `protocol` answered at least one round but not all of them
    /// (the partial-signature population of the paper's Table 4).
    [[nodiscard]] bool partially_responsive(ProtoIndex protocol) const {
        const std::size_t count = responses_for(protocol);
        return count > 0 && count < kRoundsPerProtocol;
    }

    /// True when any protocol responded only partially.
    [[nodiscard]] bool partially_responsive() const;

    [[nodiscard]] std::size_t responsive_protocol_count() const;
    [[nodiscard]] bool fully_responsive() const { return responsive_protocol_count() == 3; }
    [[nodiscard]] bool any_response() const;

    friend bool operator==(const TargetProbeResult&, const TargetProbeResult&) = default;
};

class Campaign {
  public:
    struct Config {
        std::uint16_t icmp_payload_bytes = 56;  ///< 84-byte echo requests
        std::uint16_t udp_payload_bytes = 12;   ///< all-zero payload (§3.3)
        std::uint16_t source_port = 43211;
        std::uint8_t probe_ttl = 64;
        bool send_snmp = true;

        /// First request IPID. A target's IPIDs are a pure function of its
        /// *global index*: target i's probes carry ipid_base + i*10 ..
        /// ipid_base + i*10 + 9 (mod 2^16) in global send order, which for a
        /// serial run is exactly "consecutive probes increment from the
        /// base". Because the IDs depend only on the index, any partition of
        /// the target list across vantage lanes (see run_indexed) stamps the
        /// identical packets a single serial run would.
        std::uint16_t ipid_base = 0x3100;
        /// First SNMPv3 msgID; target i carries snmp_message_id_base + i.
        std::uint32_t snmp_message_id_base = 0x51000;

        /// Targets kept in flight simultaneously. 1 = serial behaviour; any
        /// larger window produces identical results on a deterministic
        /// transport, it only overlaps the waiting.
        std::size_t window = 1;
        /// How long to keep a target's unresolved probes waiting before
        /// declaring them unanswered. Transports that can prove nothing is
        /// pending (the simulation) cut this short automatically.
        std::chrono::milliseconds response_timeout{1000};
        /// Granularity of a single poll_responses() wait.
        std::chrono::milliseconds poll_interval{20};
    };

    explicit Campaign(ProbeTransport& transport) : Campaign(transport, Config{}) {}
    Campaign(ProbeTransport& transport, Config config)
        : transport_(&transport), config_(config) {}

    /// Runs the full 9+1 probe exchange against one target.
    TargetProbeResult probe_target(net::IPv4Address target);

    /// Probes every target, keeping up to Config::window targets in flight.
    /// Results are ordered like `targets` regardless of completion order.
    /// Target i is stamped with the IDs of global index i — every run() of
    /// a campaign replays the same ID lanes, so two runs over the same list
    /// emit byte-identical packets (re-probe under a different ipid_base,
    /// or via CensusRunner whose consecutive measures continue the lane,
    /// when distinct wire traffic matters).
    std::vector<TargetProbeResult> run(std::span<const net::IPv4Address> targets);

    /// Like run(), but target i carries the IPID/msgID lane of
    /// global_indices[i] instead of i. This is the multi-vantage seam: a
    /// CensusRunner hands each vantage lane its slice of the target list
    /// together with the targets' positions in the *full* list, and every
    /// lane emits byte-identical packets to the serial single-vantage run.
    /// `global_indices` must match `targets` in size and preserve the
    /// relative order of any targets that share backend state.
    std::vector<TargetProbeResult> run_indexed(std::span<const net::IPv4Address> targets,
                                               std::span<const std::uint64_t> global_indices);

    /// IDs consumed per target in the index-derived lane scheme (9 probes
    /// plus the SNMP discovery when enabled).
    [[nodiscard]] std::uint16_t ids_per_target() const noexcept {
        return static_cast<std::uint16_t>(kProtocolCount * kRoundsPerProtocol +
                                          (config_.send_snmp ? 1 : 0));
    }

    [[nodiscard]] const Config& config() const noexcept { return config_; }
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }
    [[nodiscard]] std::uint64_t responses_received() const noexcept { return responses_; }
    /// Inbound packets that matched no outstanding probe (late, spoofed, or
    /// unrelated traffic observed on the wire).
    [[nodiscard]] std::uint64_t stray_responses() const noexcept { return strays_; }

  private:
    net::Bytes build_probe(net::IPv4Address target, ProtoIndex protocol, std::size_t round,
                           std::uint16_t ipid);
    net::Bytes build_snmp_probe(net::IPv4Address target, std::int32_t message_id,
                                std::uint16_t ipid);

    ProbeTransport* transport_;
    Config config_;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t strays_ = 0;
};

}  // namespace lfp::probe
