// The LFP probe campaign (paper §3.3): per target, nine single-packet
// probes — three ICMP echoes, two TCP ACKs plus one TCP SYN (non-zero ack
// field) to a closed port, three UDP datagrams to a closed port — and one
// SNMPv3 discovery request. Probes are interleaved across protocols in a
// fixed global send order so cross-protocol IPID counter sharing is
// observable.
//
// The campaign engine is batched, asynchronous, and streaming: each target's
// probes are sent as one ordered batch without waiting for responses, and a
// window of in-flight targets is kept saturated while inbound packets are
// demultiplexed back to their probe slots by flow key.
//
// Internally every run splits across two threads: the calling thread is the
// sender/scheduler (admission, demux dispatch, deadlines, window control)
// and a dedicated receive thread blocks in transport->poll_responses(),
// handing raw packets over a bounded lock-free SPSC ring
// (util/spsc_ring.hpp) so receives never wait on scheduling and vice versa.
//
// The in-flight window can adapt (Config::adaptive_window): clean target
// completions grow it additively, loss and ICMP rate-limit advisories
// (source quench) shrink it multiplicatively, clamped to [1, Config::window]
// — the configured window then acts as a *ceiling*, not a fixed size. Turn
// it on when the path punishes aggressiveness (live networks, the sim's
// ICMP rate limiter); leave it off where loss is rate-independent and a
// full fixed window is simply fastest. Targets are admitted strictly in
// input order and IPIDs/msgIDs derive from the global target index, so the
// global send order — the property the IPID-sharing features depend on — is
// identical at every window size and every adaptive trajectory, and a
// windowed run produces byte-identical results to a serial one (window=1)
// on any deterministic transport.
//
// run_streaming() exposes the engine's streaming nature directly: completed
// targets are emitted in input order while later targets are still in
// flight, which is what lets the census pipeline overlap feature
// extraction, signature aggregation, and classification with probing.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "probe/transport.hpp"
#include "snmp/snmpv3.hpp"
#include "util/token_bucket.hpp"

namespace lfp::probe {

/// Index order for per-protocol arrays throughout the core library.
enum class ProtoIndex : std::uint8_t { icmp = 0, tcp = 1, udp = 2 };
constexpr std::size_t kProtocolCount = 3;
constexpr std::size_t kRoundsPerProtocol = 3;

/// One request/response exchange.
struct ProbeExchange {
    std::uint16_t request_ipid = 0;
    std::uint32_t send_index = 0;  ///< global order within the target's probes
    net::Bytes request;
    std::optional<net::Bytes> response;

    [[nodiscard]] bool responded() const noexcept { return response.has_value(); }

    friend bool operator==(const ProbeExchange&, const ProbeExchange&) = default;
};

/// Everything LFP learned about one target IP.
struct TargetProbeResult {
    net::IPv4Address target;
    /// probes[protocol][round]
    std::array<std::array<ProbeExchange, kRoundsPerProtocol>, kProtocolCount> probes;
    std::optional<snmp::DiscoveryResponse> snmp;

    [[nodiscard]] std::size_t responses_for(ProtoIndex protocol) const;

    /// True only when *all* kRoundsPerProtocol rounds of `protocol` drew a
    /// response. Full per-protocol responsiveness is what the Table 3
    /// population counts and the full-signature extraction require; use
    /// partially_responsive() for the partial-signature analyses.
    [[nodiscard]] bool protocol_responsive(ProtoIndex protocol) const {
        return responses_for(protocol) == kRoundsPerProtocol;
    }

    /// True when `protocol` answered at least one round but not all of them
    /// (the partial-signature population of the paper's Table 4).
    [[nodiscard]] bool partially_responsive(ProtoIndex protocol) const {
        const std::size_t count = responses_for(protocol);
        return count > 0 && count < kRoundsPerProtocol;
    }

    /// True when any protocol responded only partially.
    [[nodiscard]] bool partially_responsive() const;

    /// True when every protocol answered every round — the full-signature
    /// population (all nine probe slots filled; the SNMP discovery is a
    /// separate ground-truth exchange and deliberately not part of this).
    /// This is the completeness notion the multi-pass retry scheduler and
    /// the bench yield gates share.
    [[nodiscard]] bool all_protocols_responsive() const {
        for (std::size_t p = 0; p < kProtocolCount; ++p) {
            if (!protocol_responsive(static_cast<ProtoIndex>(p))) return false;
        }
        return true;
    }

    [[nodiscard]] std::size_t responsive_protocol_count() const;
    [[nodiscard]] bool fully_responsive() const { return responsive_protocol_count() == 3; }
    [[nodiscard]] bool any_response() const;

    friend bool operator==(const TargetProbeResult&, const TargetProbeResult&) = default;
};

class Campaign {
  public:
    struct Config {
        std::uint16_t icmp_payload_bytes = 56;  ///< 84-byte echo requests
        std::uint16_t udp_payload_bytes = 12;   ///< all-zero payload (§3.3)
        std::uint16_t source_port = 43211;
        std::uint8_t probe_ttl = 64;
        bool send_snmp = true;

        /// Whether each ProbeExchange keeps a copy of the request packet it
        /// sent. The bytes on the wire are unaffected either way. Feature
        /// extraction and classification never read request bytes (IPIDs are
        /// carried separately in request_ipid), so internet-scale runs turn
        /// this off to drop one heap-allocated packet copy per probe slot —
        /// the compact spill record couldn't retain them anyway. Defaults to
        /// true because small-scale forensics and the wire-level tests want
        /// to inspect exactly what was sent.
        bool keep_request_bytes = true;

        /// First request IPID. A target's IPIDs are a pure function of its
        /// *global index*: target i's probes carry ipid_base + i*10 ..
        /// ipid_base + i*10 + 9 (mod 2^16) in global send order, which for a
        /// serial run is exactly "consecutive probes increment from the
        /// base". Because the IDs depend only on the index, any partition of
        /// the target list across vantage lanes (see run_indexed) stamps the
        /// identical packets a single serial run would.
        std::uint16_t ipid_base = 0x3100;
        /// First SNMPv3 msgID; target i carries snmp_message_id_base + i.
        std::uint32_t snmp_message_id_base = 0x51000;

        /// Ceiling on targets kept in flight simultaneously. 1 = serial
        /// behaviour; any larger window produces identical results on a
        /// deterministic transport, it only overlaps the waiting. With
        /// adaptive_window the engine moves inside [1, window]; without it
        /// the window is pinned here (the PR 2 fixed-window behaviour).
        std::size_t window = 1;
        /// AIMD control of the in-flight window: additive growth on clean
        /// target completions, multiplicative back-off (with a one-decrease-
        /// per-flight holdoff) on loss-shaped completions (a protocol that
        /// answered some rounds but not all — packets dropped) and ICMP
        /// source-quench advisories. Whole-protocol silence is neutral —
        /// filtering-shaped, not congestion-shaped. Never
        /// affects results — only pacing. Off by default: backing off is
        /// the right reflex only where loss correlates with send rate
        /// (live paths, rate-limited scenarios); under the sim's
        /// rate-independent background loss it would shrink the window for
        /// no responsiveness gain.
        bool adaptive_window = false;
        /// Explicit packets-per-second send cap for this lane, enforced by a
        /// token bucket (util/token_bucket.hpp) on the sender thread: a
        /// target is admitted — its whole 9+1 probe batch released onto the
        /// wire — only when the bucket holds ids_per_target() tokens, so the
        /// sustained send rate between targets never exceeds the cap. 0 (the
        /// default) disables pacing. Orthogonal to the in-flight window:
        /// the window (fixed or AIMD) bounds *concurrency*, the bucket
        /// bounds *rate*, and the tighter of the two governs at any moment.
        /// Pacing only delays admissions — it never reorders sends or
        /// changes IDs — so a paced run is byte-identical to an unpaced one
        /// on a deterministic transport, at any cap.
        double packets_per_second = 0.0;
        /// Bucket capacity in packets when pacing is on: the burst a lane
        /// may open with (and re-earn after idling) before settling to the
        /// sustained rate. Clamped up to one target batch so admission can
        /// always eventually proceed.
        double pacing_burst = 32.0;
        /// How long to keep a target's unresolved probes waiting before
        /// declaring them unanswered. Transports that can prove nothing is
        /// pending (the simulation) cut this short automatically.
        std::chrono::milliseconds response_timeout{1000};
        /// Granularity of a single poll_responses() wait on the receive
        /// thread.
        std::chrono::milliseconds poll_interval{20};
        /// Sleep phase of the spin-then-sleep backoff either thread applies
        /// when it finds nothing to do (an empty immediate poll on the
        /// receive side, an idle scheduler pass on the send side): a burst
        /// of yields keeps cross-thread handoff in the microseconds, then
        /// naps this long so an idle wait never burns a core.
        std::chrono::microseconds idle_backoff{100};
    };

    explicit Campaign(ProbeTransport& transport) : Campaign(transport, Config{}) {}
    Campaign(ProbeTransport& transport, Config config)
        : transport_(&transport), config_(config) {}

    /// Runs the full 9+1 probe exchange against one target.
    TargetProbeResult probe_target(net::IPv4Address target);

    /// Probes every target, keeping up to Config::window targets in flight.
    /// Results are ordered like `targets` regardless of completion order.
    /// Target i is stamped with the IDs of global index i — every run() of
    /// a campaign replays the same ID lanes, so two runs over the same list
    /// emit byte-identical packets (re-probe under a different ipid_base,
    /// or via CensusRunner whose consecutive measures continue the lane,
    /// when distinct wire traffic matters).
    std::vector<TargetProbeResult> run(std::span<const net::IPv4Address> targets);

    /// Like run(), but target i carries the IPID/msgID lane of
    /// global_indices[i] instead of i. This is the multi-vantage seam: a
    /// CensusRunner hands each vantage lane its slice of the target list
    /// together with the targets' positions in the *full* list, and every
    /// lane emits byte-identical packets to the serial single-vantage run.
    /// `global_indices` must match `targets` in size and preserve the
    /// relative order of any targets that share backend state.
    std::vector<TargetProbeResult> run_indexed(std::span<const net::IPv4Address> targets,
                                               std::span<const std::uint64_t> global_indices);

    /// The streaming engine underneath run()/run_indexed(): probes every
    /// target (windowed; multi-target runs split sends and receives across
    /// two threads, a single-target run pumps the transport inline) and
    /// hands each completed target to `emit` in strict input order —
    /// target i is emitted as soon as targets 0..i have all completed,
    /// while targets past i may still be in flight. `emit` runs on the
    /// calling thread and returns whether to continue: false cancels the
    /// run promptly (no further admissions; in-flight targets are
    /// abandoned unreported) — the seam a failing downstream consumer uses
    /// to stop lanes mid-census instead of waiting out the target list.
    /// Keeping `emit` cheap (e.g. pushing into a queue another thread
    /// drains) keeps the scheduler responsive. Empty `global_indices`
    /// means position i is global index i, as for run_indexed().
    ///
    /// `cancel`, when non-null, is polled every scheduler iteration: a true
    /// load stops the run exactly like `emit` returning false. Unlike the
    /// emit seam it fires even when no target ever completes — the handle a
    /// census watchdog uses to tear down a wedged lane whose transport has
    /// stopped delivering.
    void run_streaming(std::span<const net::IPv4Address> targets,
                       std::span<const std::uint64_t> global_indices,
                       const std::function<bool(std::size_t, TargetProbeResult&&)>& emit,
                       const std::atomic<bool>* cancel = nullptr);

    /// IDs consumed per target in the index-derived lane scheme (9 probes
    /// plus the SNMP discovery when enabled).
    [[nodiscard]] std::uint16_t ids_per_target() const noexcept {
        return static_cast<std::uint16_t>(kProtocolCount * kRoundsPerProtocol +
                                          (config_.send_snmp ? 1 : 0));
    }

    [[nodiscard]] const Config& config() const noexcept { return config_; }
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }
    [[nodiscard]] std::uint64_t responses_received() const noexcept { return responses_; }
    /// Inbound packets that matched no outstanding probe (late, spoofed, or
    /// unrelated traffic observed on the wire).
    [[nodiscard]] std::uint64_t stray_responses() const noexcept { return strays_; }

    /// ICMP source-quench advisories observed (each is a back-off signal,
    /// never a probe answer).
    [[nodiscard]] std::uint64_t rate_limit_signals() const noexcept {
        return rate_limit_signals_;
    }
    /// Multiplicative window decreases taken so far.
    [[nodiscard]] std::uint64_t window_decreases() const noexcept { return window_decreases_; }
    /// The in-flight window currently in force (= Config::window when the
    /// adaptive controller is off or has seen no congestion). The learned
    /// window persists across run() calls of one Campaign, like one long
    /// probing session.
    [[nodiscard]] std::size_t current_window() const noexcept;

  private:
    net::Bytes build_probe(net::IPv4Address target, ProtoIndex protocol, std::size_t round,
                           std::uint16_t ipid);
    net::Bytes build_snmp_probe(net::IPv4Address target, std::int32_t message_id,
                                std::uint16_t ipid);

    ProbeTransport* transport_;
    Config config_;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t strays_ = 0;
    std::uint64_t rate_limit_signals_ = 0;
    std::uint64_t window_decreases_ = 0;
    /// AIMD congestion window (targets), clamped to [1, Config::window].
    /// Negative = uninitialised (the first run seeds it: a small opening
    /// window when adaptive, the ceiling when fixed).
    double cwnd_ = -1.0;
    /// Learned path budget: the lowest window at which the path has sent
    /// an explicit quench. Unlike TCP, a census gains nothing from
    /// re-probing the knee — every probe costs parked timeout slots — so
    /// growth stops a margin below the learned value instead of sawtooth-
    /// ing into the limiter forever. Effectively unbounded until the
    /// first quench.
    double quench_ceiling_ = 1e300;
    /// Send-rate shaper (Config::packets_per_second), created lazily on the
    /// first paced run and persisted across run() calls of *this* Campaign
    /// object — consecutive runs of one Campaign are one pacing session and
    /// do not re-earn the opening burst. Callers that construct a fresh
    /// Campaign per batch (CensusRunner builds new lane campaigns per
    /// stream/pass) start each with a full bucket: one pacing_burst of
    /// wire-speed headroom per pass, after which the rate cap governs —
    /// standard token-bucket session semantics, bounded by pacing_burst.
    std::optional<util::TokenBucket> pacer_;
};

}  // namespace lfp::probe
