#include "probe/raw_socket_transport.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

namespace lfp::probe {

namespace {

/// Recycle-ring depth: deeper than any sane packets-per-poll burst, so
/// returns are only ever dropped (harmlessly — the pool just re-allocates)
/// when the receiver has stopped draining entirely.
constexpr std::size_t kRecycleRingDepth = 4096;

/// Receive-pool warm-up: enough pre-sized buffers that the first polls are
/// already allocation-free. Probe responses are small; 2 KB covers every
/// ICMP error quote the probers elicit.
constexpr std::size_t kPoolPrimeBuffers = 256;
constexpr std::size_t kPoolPrimeBytes = 2048;

}  // namespace

RawSocketTransport::RawSocketTransport(Options options)
    : options_(std::move(options)),
      vantage_(net::IPv4Address::from_octets(127, 0, 0, 1)),
      recycle_ring_(kRecycleRingDepth) {
    if (options_.dry_run) {
        status_ = "dry-run (no sockets opened)";
        return;
    }
    backend_ = std::make_unique<RawWireBackend>(options_.wire);
    ready_ = backend_->ready();
    status_ = backend_->status();
    if (ready_) {
        vantage_ = backend_->local_address();
        pool_.prime(kPoolPrimeBuffers, kPoolPrimeBytes);
    }
}

RawSocketTransport::~RawSocketTransport() = default;

std::unique_ptr<RawSocketTransport> RawSocketTransport::for_source(
    const std::string& source, const std::string& interface) {
    Options options;
    options.wire.source = source;
    options.wire.interface = interface;
    return std::make_unique<RawSocketTransport>(std::move(options));
}

std::vector<std::unique_ptr<RawSocketTransport>> RawSocketTransport::lanes_from_env() {
    std::vector<std::unique_ptr<RawSocketTransport>> lanes;
    const char* sources = std::getenv("LFP_WIRE_SOURCES");
    if (sources == nullptr) return lanes;
    std::istringstream stream{std::string(sources)};
    std::string source;
    while (std::getline(stream, source, ',')) {
        if (!source.empty()) lanes.push_back(for_source(source));
    }
    return lanes;
}

void RawSocketTransport::send_batch(std::span<const net::Bytes> packets) {
    if (!ready_) return;
    backend_->send(packets);
}

void RawSocketTransport::poll_responses_into(std::chrono::milliseconds timeout,
                                             std::vector<net::Bytes>& out) {
    if (!ready_) return;
    // Refill the pool from buffers the scheduler finished with before the
    // kernel hands over new packets — steady state then cycles the same
    // buffers forever.
    net::Bytes returned;
    while (recycle_ring_.try_pop(returned)) pool_.release(std::move(returned));
    backend_->receive(timeout, pool_, out);
}

std::vector<net::Bytes> RawSocketTransport::poll_responses(std::chrono::milliseconds timeout) {
    std::vector<net::Bytes> inbound;
    inbound.reserve(last_poll_size_);
    poll_responses_into(timeout, inbound);
    if (inbound.size() > last_poll_size_) last_poll_size_ = inbound.size();
    return inbound;
}

void RawSocketTransport::recycle(net::Bytes&& buffer) {
    // Best effort: a full ring just means this buffer is freed instead of
    // reused — never block the scheduler on an optimisation.
    recycle_ring_.try_push(std::move(buffer));
}

}  // namespace lfp::probe
