#include "probe/raw_socket_transport.hpp"

#include <array>
#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace lfp::probe {

RawSocketTransport::RawSocketTransport(Options options)
    : options_(options), vantage_(net::IPv4Address::from_octets(127, 0, 0, 1)) {
    if (options_.dry_run) {
        status_ = "dry-run (no sockets opened)";
        return;
    }
    ready_ = open_sockets();
}

RawSocketTransport::~RawSocketTransport() { close_sockets(); }

#ifdef __linux__

bool RawSocketTransport::open_sockets() {
    auto open_raw = [this](int protocol, int& fd) {
        fd = ::socket(AF_INET, SOCK_RAW, protocol);
        if (fd < 0) {
            status_ = std::string("socket() failed: ") + std::strerror(errno);
            return false;
        }
        return true;
    };
    if (!open_raw(IPPROTO_RAW, send_fd_) || !open_raw(IPPROTO_ICMP, recv_icmp_fd_) ||
        !open_raw(IPPROTO_TCP, recv_tcp_fd_) || !open_raw(IPPROTO_UDP, recv_udp_fd_)) {
        close_sockets();
        return false;
    }
    const int one = 1;
    if (::setsockopt(send_fd_, IPPROTO_IP, IP_HDRINCL, &one, sizeof(one)) != 0) {
        status_ = std::string("IP_HDRINCL failed: ") + std::strerror(errno);
        close_sockets();
        return false;
    }
    status_ = "ready";
    return true;
}

void RawSocketTransport::close_sockets() noexcept {
    for (int* fd : {&send_fd_, &recv_icmp_fd_, &recv_tcp_fd_, &recv_udp_fd_}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
    ready_ = false;
}

std::optional<net::Bytes> RawSocketTransport::transact(std::span<const std::uint8_t> packet) {
    if (!ready_) return std::nullopt;
    auto request = net::parse_packet(packet);
    if (!request) return std::nullopt;

    sockaddr_in destination{};
    destination.sin_family = AF_INET;
    destination.sin_addr.s_addr = htonl(request.value().ip.destination.value());
    const auto sent =
        ::sendto(send_fd_, packet.data(), packet.size(), 0,
                 reinterpret_cast<const sockaddr*>(&destination), sizeof(destination));
    if (sent < 0 || static_cast<std::size_t>(sent) != packet.size()) return std::nullopt;
    return wait_for_match(request.value());
}

std::optional<net::Bytes> RawSocketTransport::wait_for_match(const net::ParsedPacket& request) {
    const auto deadline =
        std::chrono::steady_clock::now() + options_.timeout;
    std::array<pollfd, 3> fds{{{recv_icmp_fd_, POLLIN, 0},
                               {recv_tcp_fd_, POLLIN, 0},
                               {recv_udp_fd_, POLLIN, 0}}};
    std::array<std::uint8_t, 65536> buffer{};
    for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
        const int rc = ::poll(fds.data(), fds.size(), static_cast<int>(remaining.count()));
        if (rc <= 0) return std::nullopt;
        for (const pollfd& entry : fds) {
            if ((entry.revents & POLLIN) == 0) continue;
            const auto received = ::recv(entry.fd, buffer.data(), buffer.size(), 0);
            if (received <= 0) continue;
            auto candidate = net::parse_packet(
                std::span<const std::uint8_t>(buffer.data(), static_cast<std::size_t>(received)));
            if (!candidate) continue;
            if (response_matches(request, candidate.value())) {
                return net::Bytes(buffer.begin(), buffer.begin() + received);
            }
        }
    }
}

#else  // !__linux__

bool RawSocketTransport::open_sockets() {
    status_ = "raw sockets unsupported on this platform";
    return false;
}

void RawSocketTransport::close_sockets() noexcept {}

std::optional<net::Bytes> RawSocketTransport::transact(std::span<const std::uint8_t>) {
    return std::nullopt;
}

std::optional<net::Bytes> RawSocketTransport::wait_for_match(const net::ParsedPacket&) {
    return std::nullopt;
}

#endif  // __linux__

bool RawSocketTransport::response_matches(const net::ParsedPacket& request,
                                          const net::ParsedPacket& candidate) {
    // Any response must come from the probed address (ICMP errors from
    // intermediate routers are rejected; LFP probes the target directly).
    if (candidate.ip.source != request.ip.destination) return false;
    switch (request.ip.protocol) {
        case net::Protocol::icmp: {
            const auto* sent = request.icmp();
            const auto* got = candidate.icmp();
            if (sent == nullptr || got == nullptr) return false;
            const auto* sent_echo = std::get_if<net::IcmpEcho>(sent);
            const auto* got_echo = std::get_if<net::IcmpEcho>(got);
            return sent_echo != nullptr && got_echo != nullptr && got_echo->is_reply &&
                   got_echo->identifier == sent_echo->identifier &&
                   got_echo->sequence == sent_echo->sequence;
        }
        case net::Protocol::tcp: {
            const auto* sent = request.tcp();
            const auto* got = candidate.tcp();
            return sent != nullptr && got != nullptr &&
                   got->source_port == sent->destination_port &&
                   got->destination_port == sent->source_port;
        }
        case net::Protocol::udp: {
            // Either a UDP reply (SNMP) or an ICMP error quoting our probe.
            const auto* sent = request.udp();
            if (sent == nullptr) return false;
            if (const auto* got = candidate.udp()) {
                return got->source_port == sent->destination_port &&
                       got->destination_port == sent->source_port;
            }
            if (const auto* got = candidate.icmp()) {
                const auto* error = std::get_if<net::IcmpError>(got);
                if (error == nullptr || error->quoted.size() < net::Ipv4Header::kSize + 4) {
                    return false;
                }
                // The quote begins with our original IPv4 header; match the
                // embedded destination and UDP ports.
                auto quoted_header = net::Ipv4Header::parse(error->quoted);
                if (!quoted_header ||
                    quoted_header.value().destination != request.ip.destination) {
                    return false;
                }
                const std::size_t off = net::Ipv4Header::kSize;
                const std::uint16_t src_port = static_cast<std::uint16_t>(
                    (error->quoted[off] << 8) | error->quoted[off + 1]);
                const std::uint16_t dst_port = static_cast<std::uint16_t>(
                    (error->quoted[off + 2] << 8) | error->quoted[off + 3]);
                return src_port == sent->source_port && dst_port == sent->destination_port;
            }
            return false;
        }
    }
    return false;
}

}  // namespace lfp::probe
