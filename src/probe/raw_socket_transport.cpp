#include "probe/raw_socket_transport.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <thread>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace lfp::probe {

namespace {

/// Backoff schedule for transient send errors: start tight (buffer drains
/// are usually microseconds), double each attempt, cap well below the probe
/// timeout so a wedged NIC degrades to a counted failure rather than a
/// stalled scheduler. 8 attempts ≈ 50+100+...+5000µs ≈ 13ms worst case.
constexpr std::chrono::microseconds kSendBackoffInitial{50};
constexpr std::chrono::microseconds kSendBackoffCap{5000};
constexpr int kSendAttempts = 8;

}  // namespace

RawSocketTransport::RawSocketTransport(Options options)
    : options_(options), vantage_(net::IPv4Address::from_octets(127, 0, 0, 1)) {
    if (options_.dry_run) {
        status_ = "dry-run (no sockets opened)";
        return;
    }
    ready_ = open_sockets();
}

RawSocketTransport::~RawSocketTransport() { close_sockets(); }

#ifdef __linux__

bool RawSocketTransport::open_sockets() {
    auto open_raw = [this](int protocol, int& fd) {
        fd = ::socket(AF_INET, SOCK_RAW, protocol);
        if (fd < 0) {
            status_ = std::string("socket() failed: ") + std::strerror(errno);
            return false;
        }
        return true;
    };
    if (!open_raw(IPPROTO_RAW, send_fd_) || !open_raw(IPPROTO_ICMP, recv_icmp_fd_) ||
        !open_raw(IPPROTO_TCP, recv_tcp_fd_) || !open_raw(IPPROTO_UDP, recv_udp_fd_)) {
        close_sockets();
        return false;
    }
    const int one = 1;
    if (::setsockopt(send_fd_, IPPROTO_IP, IP_HDRINCL, &one, sizeof(one)) != 0) {
        status_ = std::string("IP_HDRINCL failed: ") + std::strerror(errno);
        close_sockets();
        return false;
    }
    status_ = "ready";
    return true;
}

void RawSocketTransport::close_sockets() noexcept {
    for (int* fd : {&send_fd_, &recv_icmp_fd_, &recv_tcp_fd_, &recv_udp_fd_}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
    ready_ = false;
}

void RawSocketTransport::send_batch(std::span<const net::Bytes> packets) {
    if (!ready_) return;
    for (const net::Bytes& packet : packets) {
        auto destination_ip = net::peek_destination(packet);
        if (!destination_ip) {
            ++send_failures_;
            continue;
        }
        sockaddr_in destination{};
        destination.sin_family = AF_INET;
        destination.sin_addr.s_addr = htonl(destination_ip.value().value());
        std::chrono::microseconds backoff = kSendBackoffInitial;
        bool delivered = false;
        for (int attempt = 0; attempt < kSendAttempts; ++attempt) {
            const auto sent =
                ::sendto(send_fd_, packet.data(), packet.size(), 0,
                         reinterpret_cast<const sockaddr*>(&destination), sizeof(destination));
            if (sent >= 0 && static_cast<std::size_t>(sent) == packet.size()) {
                delivered = true;
                break;
            }
            const int error = errno;
            const bool transient = sent < 0 && (error == EAGAIN || error == EWOULDBLOCK ||
                                                error == ENOBUFS || error == EINTR);
            if (!transient) break;  // hard failure: no amount of waiting helps
            ++transient_send_errors_;
            // EINTR needs no delay — the send was interrupted, not refused.
            if (error != EINTR) {
                std::this_thread::sleep_for(backoff);
                backoff = std::min(backoff * 2, kSendBackoffCap);
            }
        }
        if (!delivered) ++send_failures_;
    }
}

std::vector<net::Bytes> RawSocketTransport::poll_responses(std::chrono::milliseconds timeout) {
    std::vector<net::Bytes> inbound;
    if (!ready_) return inbound;
    std::array<pollfd, 3> fds{{{recv_icmp_fd_, POLLIN, 0},
                               {recv_tcp_fd_, POLLIN, 0},
                               {recv_udp_fd_, POLLIN, 0}}};
    const int rc = ::poll(fds.data(), fds.size(), static_cast<int>(timeout.count()));
    if (rc <= 0) return inbound;
    std::array<std::uint8_t, 65536> buffer{};
    for (const pollfd& entry : fds) {
        if ((entry.revents & POLLIN) == 0) continue;
        // Drain everything queued on this socket without blocking again.
        for (;;) {
            const auto received =
                ::recv(entry.fd, buffer.data(), buffer.size(), MSG_DONTWAIT);
            if (received <= 0) break;
            inbound.emplace_back(buffer.begin(), buffer.begin() + received);
        }
    }
    return inbound;
}

#else  // !__linux__

bool RawSocketTransport::open_sockets() {
    status_ = "raw sockets unsupported on this platform";
    return false;
}

void RawSocketTransport::close_sockets() noexcept {}

void RawSocketTransport::send_batch(std::span<const net::Bytes>) {}

std::vector<net::Bytes> RawSocketTransport::poll_responses(std::chrono::milliseconds) {
    return {};
}

#endif  // __linux__

}  // namespace lfp::probe
