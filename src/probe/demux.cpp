#include "probe/demux.hpp"

namespace lfp::probe {
namespace {

FlowKey make_key(net::IPv4Address target, net::Protocol protocol, std::uint16_t local,
                 std::uint16_t remote) {
    return FlowKey{target.value(), static_cast<std::uint8_t>(protocol), local, remote};
}

/// Keys an ICMP error by the quoted offending datagram. The quote starts
/// with our original IPv4 header followed by at least the first 8 bytes of
/// the transport header (RFC 792) — enough for the port pair. Only UDP
/// probes accept an ICMP error as their answer (port unreachable from the
/// closed port): TCP responsiveness means an actual RST (paper Table 1), so
/// an admin-prohibited error quoting a TCP probe must not fill its slot,
/// and quoted ICMP echoes have no port pair to read.
std::optional<FlowKey> quoted_flow_key(const net::ParsedPacket& response,
                                       const net::IcmpError& error) {
    // A source quench is a rate-limit advisory, not an answer: it must never
    // fill the quoted probe's slot (the probe's real response was suppressed
    // and the slot stays outstanding). The engine reads quenches out of band
    // as window back-off signals before demultiplexing.
    if (error.type == net::IcmpType::source_quench) return std::nullopt;
    if (error.quoted.size() < net::Ipv4Header::kSize + 4) return std::nullopt;
    auto quoted = net::Ipv4Header::parse(
        std::span<const std::uint8_t>(error.quoted.data(), error.quoted.size()));
    if (!quoted) return std::nullopt;
    if (quoted.value().protocol != net::Protocol::udp) return std::nullopt;
    // Only the probed interface itself may answer; errors relayed by
    // intermediate routers carry a foreign source address and are dropped.
    if (quoted.value().destination != response.ip.source) return std::nullopt;
    const std::size_t off = net::Ipv4Header::kSize;
    const auto src_port =
        static_cast<std::uint16_t>((error.quoted[off] << 8) | error.quoted[off + 1]);
    const auto dst_port =
        static_cast<std::uint16_t>((error.quoted[off + 2] << 8) | error.quoted[off + 3]);
    return make_key(quoted.value().destination, quoted.value().protocol, src_port, dst_port);
}

}  // namespace

std::optional<FlowKey> request_flow_key(const net::ParsedPacket& request) {
    switch (request.ip.protocol) {
        case net::Protocol::icmp: {
            const auto* echo = std::get_if<net::IcmpEcho>(request.icmp());
            if (echo == nullptr || echo->is_reply) return std::nullopt;
            return make_key(request.ip.destination, net::Protocol::icmp, echo->identifier,
                            echo->sequence);
        }
        case net::Protocol::tcp: {
            const auto* tcp = request.tcp();
            if (tcp == nullptr) return std::nullopt;
            return make_key(request.ip.destination, net::Protocol::tcp, tcp->source_port,
                            tcp->destination_port);
        }
        case net::Protocol::udp: {
            const auto* udp = request.udp();
            if (udp == nullptr) return std::nullopt;
            return make_key(request.ip.destination, net::Protocol::udp, udp->source_port,
                            udp->destination_port);
        }
    }
    return std::nullopt;
}

std::optional<FlowKey> response_flow_key(const net::ParsedPacket& response) {
    switch (response.ip.protocol) {
        case net::Protocol::icmp: {
            const auto* icmp = response.icmp();
            if (icmp == nullptr) return std::nullopt;
            if (const auto* echo = std::get_if<net::IcmpEcho>(icmp)) {
                if (!echo->is_reply) return std::nullopt;
                return make_key(response.ip.source, net::Protocol::icmp, echo->identifier,
                                echo->sequence);
            }
            if (const auto* error = std::get_if<net::IcmpError>(icmp)) {
                return quoted_flow_key(response, *error);
            }
            return std::nullopt;
        }
        case net::Protocol::tcp: {
            const auto* tcp = response.tcp();
            if (tcp == nullptr) return std::nullopt;
            // Swap the pair back into request orientation.
            return make_key(response.ip.source, net::Protocol::tcp, tcp->destination_port,
                            tcp->source_port);
        }
        case net::Protocol::udp: {
            const auto* udp = response.udp();
            if (udp == nullptr) return std::nullopt;
            return make_key(response.ip.source, net::Protocol::udp, udp->destination_port,
                            udp->source_port);
        }
    }
    return std::nullopt;
}

void ResponseDemux::expect(const FlowKey& key, SlotRef slot) {
    expected_.insert_or_assign(key, slot);
}

std::optional<SlotRef> ResponseDemux::match(const net::ParsedPacket& response) {
    auto key = response_flow_key(response);
    if (!key) {
        ++strays_;
        return std::nullopt;
    }
    SlotRef* found = expected_.find(*key);
    if (found == nullptr) {
        ++strays_;
        return std::nullopt;
    }
    SlotRef slot = *found;
    expected_.erase(*key);
    return slot;
}

void ResponseDemux::cancel_target(std::uint64_t target) {
    std::vector<FlowKey> doomed;
    expected_.for_each([&](const FlowKey& key, const SlotRef& slot) {
        if (slot.target == target) doomed.push_back(key);
    });
    for (const FlowKey& key : doomed) expected_.erase(key);
}

}  // namespace lfp::probe
