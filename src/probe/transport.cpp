#include "probe/transport.hpp"

// Interface-only translation unit: keeps the vtable anchored in one place.
namespace lfp::probe {}
