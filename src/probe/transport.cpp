#include "probe/transport.hpp"

#include "probe/demux.hpp"

namespace lfp::probe {

std::optional<net::Bytes> ProbeTransport::transact(std::span<const std::uint8_t> packet) {
    auto request = net::parse_packet(packet);
    if (!request) return std::nullopt;
    auto key = request_flow_key(request.value());
    if (!key) return std::nullopt;

    const net::Bytes copy(packet.begin(), packet.end());
    send_batch({&copy, 1});

    const auto deadline = std::chrono::steady_clock::now() + transact_timeout();
    // Poll in short slices so a transport with real latency can sleep, while
    // a drained transport (simulation after loss) bails out immediately.
    constexpr std::chrono::milliseconds kSlice{20};
    for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
        auto responses = poll_responses(std::min(kSlice, remaining));
        for (net::Bytes& raw : responses) {
            auto candidate = net::parse_packet(raw);
            if (!candidate) continue;
            auto candidate_key = response_flow_key(candidate.value());
            if (candidate_key && *candidate_key == *key) return std::move(raw);
        }
        if (responses.empty() && drained()) return std::nullopt;
    }
}

}  // namespace lfp::probe
