// Minimal ASN.1 BER encoder/decoder — the subset SNMPv3 needs:
// INTEGER, OCTET STRING, NULL, OBJECT IDENTIFIER, SEQUENCE, and
// context-specific constructed tags (PDU choices).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/endian.hpp"
#include "util/result.hpp"

namespace lfp::snmp {

using net::Bytes;

enum class BerTag : std::uint8_t {
    integer = 0x02,
    octet_string = 0x04,
    null = 0x05,
    object_identifier = 0x06,
    sequence = 0x30,
    // Context-specific constructed tags 0xA0.. are built via BerValue::context.
};

/// A decoded BER node: primitive nodes carry bytes, constructed nodes carry
/// children. The tree owns all its storage.
class BerValue {
  public:
    BerValue() = default;

    static BerValue integer(std::int64_t value);
    static BerValue octet_string(Bytes bytes);
    static BerValue octet_string(std::string_view text);
    static BerValue null();
    static BerValue oid(std::vector<std::uint32_t> arcs);
    static BerValue sequence(std::vector<BerValue> children);
    /// Context-specific constructed tag [n], e.g. PDU choices.
    static BerValue context(std::uint8_t number, std::vector<BerValue> children);

    [[nodiscard]] std::uint8_t tag() const noexcept { return tag_; }
    [[nodiscard]] bool is_constructed() const noexcept { return (tag_ & 0x20) != 0; }
    [[nodiscard]] bool is_context() const noexcept { return (tag_ & 0xC0) == 0x80; }
    [[nodiscard]] std::uint8_t context_number() const noexcept {
        return static_cast<std::uint8_t>(tag_ & 0x1F);
    }

    [[nodiscard]] const std::vector<BerValue>& children() const noexcept { return children_; }
    [[nodiscard]] const Bytes& primitive() const noexcept { return primitive_; }

    /// Accessors with type validation.
    [[nodiscard]] util::Result<std::int64_t> as_integer() const;
    [[nodiscard]] util::Result<Bytes> as_octet_string() const;
    [[nodiscard]] util::Result<std::vector<std::uint32_t>> as_oid() const;

    /// Child access for constructed values; errors on bad index/kind.
    [[nodiscard]] util::Result<const BerValue*> child(std::size_t index) const;

    friend bool operator==(const BerValue&, const BerValue&) = default;

  private:
    std::uint8_t tag_ = static_cast<std::uint8_t>(BerTag::null);
    Bytes primitive_;
    std::vector<BerValue> children_;
};

/// Definite-length DER-style encoding (sufficient for SNMP interop).
[[nodiscard]] Bytes ber_encode(const BerValue& value);

/// Decodes exactly one value; trailing bytes are an error.
[[nodiscard]] util::Result<BerValue> ber_decode(std::span<const std::uint8_t> data);

}  // namespace lfp::snmp
