#include "snmp/snmpv3.hpp"

namespace lfp::snmp {

namespace {

constexpr std::uint8_t kMsgFlagsReportable = 0x04;
constexpr std::int64_t kSecurityModelUsm = 3;
constexpr std::uint8_t kPduGetRequest = 0;
constexpr std::uint8_t kPduReport = 8;

/// msgSecurityParameters is an OCTET STRING wrapping a BER-encoded
/// UsmSecurityParameters sequence.
BerValue usm_parameters(const Bytes& engine_id, std::int64_t boots, std::int64_t time) {
    BerValue usm = BerValue::sequence({
        BerValue::octet_string(engine_id),
        BerValue::integer(boots),
        BerValue::integer(time),
        BerValue::octet_string(Bytes{}),  // msgUserName (empty for discovery)
        BerValue::octet_string(Bytes{}),  // msgAuthenticationParameters
        BerValue::octet_string(Bytes{}),  // msgPrivacyParameters
    });
    return BerValue::octet_string(ber_encode(usm));
}

BerValue global_data(std::int64_t message_id, std::int64_t max_size) {
    return BerValue::sequence({
        BerValue::integer(message_id),
        BerValue::integer(max_size),
        BerValue::octet_string(Bytes{kMsgFlagsReportable}),
        BerValue::integer(kSecurityModelUsm),
    });
}

struct ParsedMessage {
    std::int64_t message_id = 0;
    Bytes engine_id;
    std::int64_t boots = 0;
    std::int64_t time = 0;
    std::uint8_t pdu_type = 0;
};

util::Result<ParsedMessage> parse_message(std::span<const std::uint8_t> data) {
    auto decoded = ber_decode(data);
    if (!decoded) return decoded.error();
    const BerValue& message = decoded.value();
    if (message.tag() != static_cast<std::uint8_t>(BerTag::sequence) ||
        message.children().size() != 4) {
        return util::make_error("SNMPv3 message must be a 4-element sequence");
    }
    auto version = message.children()[0].as_integer();
    if (!version) return version.error();
    if (version.value() != 3) return util::make_error("not SNMP version 3");

    const BerValue& header = message.children()[1];
    if (!header.is_constructed() || header.children().size() != 4) {
        return util::make_error("bad msgGlobalData");
    }
    auto message_id = header.children()[0].as_integer();
    if (!message_id) return message_id.error();

    auto security_blob = message.children()[2].as_octet_string();
    if (!security_blob) return security_blob.error();
    auto usm_decoded = ber_decode(security_blob.value());
    if (!usm_decoded) return usm_decoded.error();
    const BerValue& usm = usm_decoded.value();
    if (!usm.is_constructed() || usm.children().size() != 6) {
        return util::make_error("bad UsmSecurityParameters");
    }
    auto engine = usm.children()[0].as_octet_string();
    auto boots = usm.children()[1].as_integer();
    auto time = usm.children()[2].as_integer();
    if (!engine) return engine.error();
    if (!boots) return boots.error();
    if (!time) return time.error();

    const BerValue& scoped = message.children()[3];
    if (!scoped.is_constructed() || scoped.children().size() != 3) {
        return util::make_error("bad ScopedPDU");
    }
    const BerValue& pdu = scoped.children()[2];
    if (!pdu.is_context()) return util::make_error("PDU must be a context tag");

    ParsedMessage out;
    out.message_id = message_id.value();
    out.engine_id = std::move(engine).value();
    out.boots = boots.value();
    out.time = time.value();
    out.pdu_type = pdu.context_number();
    return out;
}

}  // namespace

std::vector<std::uint32_t> usm_stats_unknown_engine_ids_oid() {
    return {1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0};
}

Bytes DiscoveryRequest::serialize() const {
    BerValue pdu = BerValue::context(kPduGetRequest, {
        BerValue::integer(message_id),  // request-id
        BerValue::integer(0),           // error-status
        BerValue::integer(0),           // error-index
        BerValue::sequence({}),         // empty variable-bindings
    });
    BerValue scoped_pdu = BerValue::sequence({
        BerValue::octet_string(Bytes{}),  // contextEngineID (empty: discovery)
        BerValue::octet_string(Bytes{}),  // contextName
        std::move(pdu),
    });
    BerValue message = BerValue::sequence({
        BerValue::integer(3),
        global_data(message_id, max_size),
        usm_parameters(Bytes{}, 0, 0),
        std::move(scoped_pdu),
    });
    return ber_encode(message);
}

util::Result<DiscoveryRequest> DiscoveryRequest::parse(std::span<const std::uint8_t> data) {
    auto message = parse_message(data);
    if (!message) return message.error();
    if (message.value().pdu_type != kPduGetRequest) {
        return util::make_error("not a GetRequest PDU");
    }
    if (!message.value().engine_id.empty()) {
        return util::make_error("discovery request must carry an empty engine ID");
    }
    DiscoveryRequest request;
    request.message_id = static_cast<std::int32_t>(message.value().message_id);
    return request;
}

Bytes DiscoveryResponse::serialize() const {
    const Bytes engine_wire = engine_id.serialize();
    BerValue pdu = BerValue::context(kPduReport, {
        BerValue::integer(message_id),
        BerValue::integer(0),
        BerValue::integer(0),
        BerValue::sequence({
            BerValue::sequence({
                BerValue::oid(usm_stats_unknown_engine_ids_oid()),
                BerValue::integer(1),  // counter value (implementation-chosen)
            }),
        }),
    });
    BerValue scoped_pdu = BerValue::sequence({
        BerValue::octet_string(engine_wire),
        BerValue::octet_string(Bytes{}),
        std::move(pdu),
    });
    BerValue message = BerValue::sequence({
        BerValue::integer(3),
        global_data(message_id, 65507),
        usm_parameters(engine_wire, engine_boots, engine_time),
        std::move(scoped_pdu),
    });
    return ber_encode(message);
}

util::Result<DiscoveryResponse> DiscoveryResponse::parse(std::span<const std::uint8_t> data) {
    auto message = parse_message(data);
    if (!message) return message.error();
    if (message.value().pdu_type != kPduReport) return util::make_error("not a Report PDU");
    auto engine = EngineId::parse(message.value().engine_id);
    if (!engine) return engine.error();
    DiscoveryResponse response;
    response.message_id = static_cast<std::int32_t>(message.value().message_id);
    response.engine_id = std::move(engine).value();
    response.engine_boots = static_cast<std::int32_t>(message.value().boots);
    response.engine_time = static_cast<std::int32_t>(message.value().time);
    return response;
}

}  // namespace lfp::snmp
