#include "snmp/engine_id.hpp"

namespace lfp::snmp {

Bytes EngineId::serialize() const {
    Bytes out;
    std::uint32_t head = enterprise & 0x7FFFFFFF;
    if (new_format) head |= 0x80000000;
    out.push_back(static_cast<std::uint8_t>(head >> 24));
    out.push_back(static_cast<std::uint8_t>((head >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((head >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(head & 0xFF));
    if (new_format) {
        out.push_back(static_cast<std::uint8_t>(format));
        out.insert(out.end(), remainder.begin(), remainder.end());
    } else {
        // Old format: fixed 12 bytes; remainder padded/truncated to 8.
        Bytes tail = remainder;
        tail.resize(8, 0);
        out.insert(out.end(), tail.begin(), tail.end());
    }
    return out;
}

util::Result<EngineId> EngineId::parse(const Bytes& wire) {
    if (wire.size() < 5 || wire.size() > 32) return util::make_error("engine ID length invalid");
    EngineId id;
    const std::uint32_t head = (static_cast<std::uint32_t>(wire[0]) << 24) |
                               (static_cast<std::uint32_t>(wire[1]) << 16) |
                               (static_cast<std::uint32_t>(wire[2]) << 8) |
                               static_cast<std::uint32_t>(wire[3]);
    id.new_format = (head & 0x80000000) != 0;
    id.enterprise = head & 0x7FFFFFFF;
    if (id.new_format) {
        id.format = static_cast<EngineIdFormat>(wire[4]);
        id.remainder.assign(wire.begin() + 5, wire.end());
    } else {
        if (wire.size() != 12) return util::make_error("old-format engine ID must be 12 bytes");
        id.format = EngineIdFormat::octets;
        id.remainder.assign(wire.begin() + 4, wire.end());
    }
    return id;
}

EngineId make_mac_engine_id(std::uint32_t enterprise_number,
                            const std::array<std::uint8_t, 6>& mac) {
    EngineId id;
    id.enterprise = enterprise_number;
    id.format = EngineIdFormat::mac;
    id.remainder.assign(mac.begin(), mac.end());
    return id;
}

EngineId make_ipv4_engine_id(std::uint32_t enterprise_number, net::IPv4Address address) {
    EngineId id;
    id.enterprise = enterprise_number;
    id.format = EngineIdFormat::ipv4;
    id.remainder = {address.octet(0), address.octet(1), address.octet(2), address.octet(3)};
    return id;
}

EngineId make_text_engine_id(std::uint32_t enterprise_number, std::string_view text) {
    EngineId id;
    id.enterprise = enterprise_number;
    id.format = EngineIdFormat::text;
    id.remainder.assign(text.begin(), text.end());
    if (id.remainder.size() > 27) id.remainder.resize(27);  // 32-byte wire cap
    return id;
}

EngineId make_octets_engine_id(std::uint32_t enterprise_number, Bytes octets) {
    EngineId id;
    id.enterprise = enterprise_number;
    id.format = EngineIdFormat::octets;
    id.remainder = std::move(octets);
    if (id.remainder.size() > 27) id.remainder.resize(27);
    return id;
}

}  // namespace lfp::snmp
