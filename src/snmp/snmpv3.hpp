// SNMPv3 discovery exchange (RFC 3412 message format, RFC 3414 USM).
//
// The fingerprinting technique sends a single unauthenticated GET with an
// empty engine ID; the authoritative engine answers with a REPORT PDU
// (usmStatsUnknownEngineIDs) whose security parameters carry the engine ID,
// boots, and time — enough to identify the vendor remotely.
#pragma once

#include <cstdint>
#include <optional>

#include "snmp/ber.hpp"
#include "snmp/engine_id.hpp"
#include "util/result.hpp"

namespace lfp::snmp {

constexpr std::uint16_t kSnmpPort = 161;

/// The usmStatsUnknownEngineIDs counter OID (1.3.6.1.6.3.15.1.1.4.0).
std::vector<std::uint32_t> usm_stats_unknown_engine_ids_oid();

struct DiscoveryRequest {
    std::int32_t message_id = 0;
    std::int32_t max_size = 65507;

    /// UDP payload for the discovery GET.
    [[nodiscard]] Bytes serialize() const;

    static util::Result<DiscoveryRequest> parse(std::span<const std::uint8_t> data);
};

struct DiscoveryResponse {
    std::int32_t message_id = 0;
    EngineId engine_id;
    std::int32_t engine_boots = 0;
    std::int32_t engine_time = 0;

    [[nodiscard]] Bytes serialize() const;

    static util::Result<DiscoveryResponse> parse(std::span<const std::uint8_t> data);

    friend bool operator==(const DiscoveryResponse&, const DiscoveryResponse&) = default;
};

}  // namespace lfp::snmp
