// SNMPv3 engine ID (RFC 3411 SnmpEngineID) construction and parsing.
//
// The engine ID begins with the vendor's IANA private enterprise number; it
// is the strong vendor label the SNMPv3 fingerprinting technique (and our
// ground-truth labeler) relies on.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/endian.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace lfp::snmp {

using net::Bytes;

/// IANA private enterprise numbers for the vendors this study tracks.
namespace enterprise {
constexpr std::uint32_t kCisco = 9;
constexpr std::uint32_t kEricsson = 193;
constexpr std::uint32_t kBrocade = 1991;  // Foundry
constexpr std::uint32_t kJuniper = 2636;
constexpr std::uint32_t kHuawei = 2011;
constexpr std::uint32_t kZte = 3902;
constexpr std::uint32_t kRuijie = 4881;
constexpr std::uint32_t kNokia = 6527;  // TiMetra / Alcatel-Lucent SR
constexpr std::uint32_t kNetSnmp = 8072;
constexpr std::uint32_t kMikroTik = 14988;
constexpr std::uint32_t kH3c = 25506;
constexpr std::uint32_t kExtreme = 1916;
constexpr std::uint32_t kAdva = 2544;
constexpr std::uint32_t kArista = 30065;
constexpr std::uint32_t kFortinet = 12356;
constexpr std::uint32_t kDlink = 171;
}  // namespace enterprise

/// RFC 3411 format octet for the "new" (bit-15-set) engine ID layout.
enum class EngineIdFormat : std::uint8_t {
    ipv4 = 1,
    ipv6 = 2,
    mac = 3,
    text = 4,
    octets = 5,
    enterprise_specific = 128,
};

struct EngineId {
    std::uint32_t enterprise = 0;
    bool new_format = true;
    EngineIdFormat format = EngineIdFormat::mac;
    Bytes remainder;  ///< format-specific identifier (the persistent part)

    /// Serializes to the wire layout (5..32 bytes).
    [[nodiscard]] Bytes serialize() const;

    /// Parses a wire engine ID; tolerates old-format (12-byte) IDs.
    static util::Result<EngineId> parse(const Bytes& wire);

    friend bool operator==(const EngineId&, const EngineId&) = default;
};

/// Builders for the shapes we see in the wild.
EngineId make_mac_engine_id(std::uint32_t enterprise_number,
                            const std::array<std::uint8_t, 6>& mac);
EngineId make_ipv4_engine_id(std::uint32_t enterprise_number, net::IPv4Address address);
EngineId make_text_engine_id(std::uint32_t enterprise_number, std::string_view text);
EngineId make_octets_engine_id(std::uint32_t enterprise_number, Bytes octets);

}  // namespace lfp::snmp
