#include "snmp/ber.hpp"

namespace lfp::snmp {

BerValue BerValue::integer(std::int64_t value) {
    BerValue v;
    v.tag_ = static_cast<std::uint8_t>(BerTag::integer);
    // Two's-complement big-endian, minimal length.
    Bytes bytes;
    bool more = true;
    while (more) {
        bytes.insert(bytes.begin(), static_cast<std::uint8_t>(value & 0xFF));
        const std::uint8_t top = bytes.front();
        value >>= 8;
        more = !((value == 0 && (top & 0x80) == 0) || (value == -1 && (top & 0x80) != 0));
    }
    v.primitive_ = std::move(bytes);
    return v;
}

BerValue BerValue::octet_string(Bytes bytes) {
    BerValue v;
    v.tag_ = static_cast<std::uint8_t>(BerTag::octet_string);
    v.primitive_ = std::move(bytes);
    return v;
}

BerValue BerValue::octet_string(std::string_view text) {
    Bytes bytes(text.begin(), text.end());
    return octet_string(std::move(bytes));
}

BerValue BerValue::null() {
    BerValue v;
    v.tag_ = static_cast<std::uint8_t>(BerTag::null);
    return v;
}

BerValue BerValue::oid(std::vector<std::uint32_t> arcs) {
    BerValue v;
    v.tag_ = static_cast<std::uint8_t>(BerTag::object_identifier);
    Bytes bytes;
    if (arcs.size() >= 2) {
        bytes.push_back(static_cast<std::uint8_t>(arcs[0] * 40 + arcs[1]));
        for (std::size_t i = 2; i < arcs.size(); ++i) {
            std::uint32_t arc = arcs[i];
            Bytes encoded;
            encoded.push_back(static_cast<std::uint8_t>(arc & 0x7F));
            arc >>= 7;
            while (arc != 0) {
                encoded.insert(encoded.begin(), static_cast<std::uint8_t>(0x80 | (arc & 0x7F)));
                arc >>= 7;
            }
            bytes.insert(bytes.end(), encoded.begin(), encoded.end());
        }
    }
    v.primitive_ = std::move(bytes);
    return v;
}

BerValue BerValue::sequence(std::vector<BerValue> children) {
    BerValue v;
    v.tag_ = static_cast<std::uint8_t>(BerTag::sequence);
    v.children_ = std::move(children);
    return v;
}

BerValue BerValue::context(std::uint8_t number, std::vector<BerValue> children) {
    BerValue v;
    v.tag_ = static_cast<std::uint8_t>(0xA0 | (number & 0x1F));
    v.children_ = std::move(children);
    return v;
}

util::Result<std::int64_t> BerValue::as_integer() const {
    if (tag_ != static_cast<std::uint8_t>(BerTag::integer) || primitive_.empty() ||
        primitive_.size() > 8) {
        return util::make_error("not a BER integer");
    }
    std::int64_t value = (primitive_[0] & 0x80) != 0 ? -1 : 0;
    for (std::uint8_t byte : primitive_) value = (value << 8) | byte;
    return value;
}

util::Result<Bytes> BerValue::as_octet_string() const {
    if (tag_ != static_cast<std::uint8_t>(BerTag::octet_string)) {
        return util::make_error("not a BER octet string");
    }
    return primitive_;
}

util::Result<std::vector<std::uint32_t>> BerValue::as_oid() const {
    if (tag_ != static_cast<std::uint8_t>(BerTag::object_identifier) || primitive_.empty()) {
        return util::make_error("not a BER OID");
    }
    std::vector<std::uint32_t> arcs;
    arcs.push_back(primitive_[0] / 40);
    arcs.push_back(primitive_[0] % 40);
    std::uint32_t current = 0;
    for (std::size_t i = 1; i < primitive_.size(); ++i) {
        current = (current << 7) | (primitive_[i] & 0x7F);
        if ((primitive_[i] & 0x80) == 0) {
            arcs.push_back(current);
            current = 0;
        }
    }
    return arcs;
}

util::Result<const BerValue*> BerValue::child(std::size_t index) const {
    if (!is_constructed()) return util::make_error("BER value is not constructed");
    if (index >= children_.size()) return util::make_error("BER child index out of range");
    return &children_[index];
}

namespace {

void encode_length(Bytes& out, std::size_t length) {
    if (length < 0x80) {
        out.push_back(static_cast<std::uint8_t>(length));
        return;
    }
    Bytes digits;
    while (length != 0) {
        digits.insert(digits.begin(), static_cast<std::uint8_t>(length & 0xFF));
        length >>= 8;
    }
    out.push_back(static_cast<std::uint8_t>(0x80 | digits.size()));
    out.insert(out.end(), digits.begin(), digits.end());
}

void encode_into(const BerValue& value, Bytes& out) {
    out.push_back(value.tag());
    if (value.is_constructed()) {
        Bytes content;
        for (const auto& c : value.children()) encode_into(c, content);
        encode_length(out, content.size());
        out.insert(out.end(), content.begin(), content.end());
    } else {
        encode_length(out, value.primitive().size());
        out.insert(out.end(), value.primitive().begin(), value.primitive().end());
    }
}

struct Decoder {
    std::span<const std::uint8_t> data;
    std::size_t pos = 0;

    [[nodiscard]] bool eof() const { return pos >= data.size(); }

    util::Result<BerValue> decode_one(int depth) {
        if (depth > 32) return util::make_error("BER nesting too deep");
        if (pos >= data.size()) return util::make_error("BER truncated at tag");
        const std::uint8_t tag = data[pos++];
        if ((tag & 0x1F) == 0x1F) return util::make_error("multi-byte BER tags unsupported");
        auto length = decode_length();
        if (!length) return length.error();
        const std::size_t len = length.value();
        if (data.size() - pos < len) return util::make_error("BER truncated at content");
        const auto content = data.subspan(pos, len);
        pos += len;

        BerValue out;
        if ((tag & 0x20) != 0) {
            std::vector<BerValue> children;
            Decoder inner{content};
            while (!inner.eof()) {
                auto child = inner.decode_one(depth + 1);
                if (!child) return child.error();
                children.push_back(std::move(child).value());
            }
            if ((tag & 0xC0) == 0x80) {
                out = BerValue::context(static_cast<std::uint8_t>(tag & 0x1F),
                                        std::move(children));
            } else if (tag == static_cast<std::uint8_t>(BerTag::sequence)) {
                out = BerValue::sequence(std::move(children));
            } else {
                return util::make_error("unsupported constructed BER tag");
            }
        } else {
            switch (static_cast<BerTag>(tag)) {
                case BerTag::integer: {
                    if (content.empty() || content.size() > 8) {
                        return util::make_error("bad BER integer length");
                    }
                    // Rebuild via the factory to keep canonical form.
                    std::int64_t value = (content[0] & 0x80) != 0 ? -1 : 0;
                    for (std::uint8_t b : content) value = (value << 8) | b;
                    out = BerValue::integer(value);
                    break;
                }
                case BerTag::octet_string:
                    out = BerValue::octet_string(Bytes(content.begin(), content.end()));
                    break;
                case BerTag::null:
                    if (!content.empty()) return util::make_error("non-empty BER null");
                    out = BerValue::null();
                    break;
                case BerTag::object_identifier: {
                    if (content.empty()) return util::make_error("empty BER OID");
                    // Decode arcs and re-encode through the factory so the
                    // stored form is canonical.
                    std::vector<std::uint32_t> arcs;
                    arcs.push_back(content[0] / 40);
                    arcs.push_back(content[0] % 40);
                    std::uint32_t current = 0;
                    bool in_progress = false;
                    for (std::size_t i = 1; i < content.size(); ++i) {
                        current = (current << 7) | (content[i] & 0x7F);
                        in_progress = (content[i] & 0x80) != 0;
                        if (!in_progress) {
                            arcs.push_back(current);
                            current = 0;
                        }
                    }
                    if (in_progress) return util::make_error("BER OID arc truncated");
                    out = BerValue::oid(std::move(arcs));
                    break;
                }
                default: return util::make_error("unsupported BER tag");
            }
        }
        return out;
    }

    util::Result<std::size_t> decode_length() {
        if (pos >= data.size()) return util::make_error("BER truncated at length");
        const std::uint8_t first = data[pos++];
        if ((first & 0x80) == 0) return static_cast<std::size_t>(first);
        const std::size_t digits = first & 0x7F;
        if (digits == 0 || digits > 4) return util::make_error("unsupported BER length form");
        if (data.size() - pos < digits) return util::make_error("BER truncated in length");
        std::size_t length = 0;
        for (std::size_t i = 0; i < digits; ++i) length = (length << 8) | data[pos++];
        return length;
    }
};

}  // namespace

Bytes ber_encode(const BerValue& value) {
    Bytes out;
    encode_into(value, out);
    return out;
}

util::Result<BerValue> ber_decode(std::span<const std::uint8_t> data) {
    Decoder decoder{data};
    auto value = decoder.decode_one(0);
    if (!value) return value;
    if (!decoder.eof()) return util::make_error("trailing bytes after BER value");
    return value;
}

}  // namespace lfp::snmp
