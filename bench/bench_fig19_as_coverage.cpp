// Figure 19 (Appendix A) — LFP coverage per AS: ECDF of the percentage of an
// AS's routers whose vendor is identified, for minimum-AS-size thresholds.
#include "analysis/as_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map =
        analysis::VendorMap::from_measurement(itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto verdicts =
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map);
    const auto coverage = analysis::per_as_coverage(verdicts);

    // The paper uses thresholds 1/10/100/1000; at our scale the same series
    // is 1/5/25/100 (≈ divided by world scale).
    const auto all_ases = analysis::coverage_ecdf(coverage, 1);
    const auto min5 = analysis::coverage_ecdf(coverage, 5);
    const auto min25 = analysis::coverage_ecdf(coverage, 25);
    const auto min100 = analysis::coverage_ecdf(coverage, 100);

    util::print_ecdf_set(std::cout, "Figure 19 — Identified routers per AS (%)",
                         {{"All", &all_ases},
                          {"10+*", &min5},
                          {"100+*", &min25},
                          {"1000+*", &min100}},
                         20, "% identified");
    std::cout << "  (* scaled thresholds: 5/25/100 routers at this world size)\n";

    auto full_cov = [](const util::Ecdf& e) { return 1.0 - e.at(99.999); };
    auto half_cov = [](const util::Ecdf& e) { return 1.0 - e.at(49.999); };
    std::cout << "\n  All ASes: fully identified " << util::format_percent(full_cov(all_ases))
              << " (paper: ~60%, dominated by single-router ASes)\n"
              << "  Mid-size ASes: >=half identified " << util::format_percent(half_cov(min5))
              << " (paper: >=75%)\n"
              << "  Largest ASes: >=half identified " << util::format_percent(half_cov(min100))
              << " (paper: coverage decreases for 1000+-router networks)\n";
    return 0;
}
