// Shared scaffolding for the bench binaries: world construction with env
// overrides, timing, and small formatting helpers.
//
// Every binary in bench/ regenerates one table or figure of the paper. The
// absolute numbers are scaled (the world is ~1:16 of the paper's by
// default; set LFP_SCALE/LFP_ASES/LFP_TRACES to grow it); the *shape* is
// what is being reproduced — see EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <iostream>
#include <memory>

#include "analysis/experiment_world.hpp"
#include "util/table.hpp"

namespace lfp::bench {

inline std::unique_ptr<analysis::ExperimentWorld> make_world() {
    const auto config = analysis::WorldConfig::from_env();
    std::cout << "[world] seed=" << config.seed << " ases=" << config.num_ases
              << " scale=" << config.scale << " traces/snapshot=" << config.traces_per_snapshot
              << "\n[world] building simulated Internet and running the six measurement "
                 "campaigns...\n";
    const auto start = std::chrono::steady_clock::now();
    auto world = analysis::ExperimentWorld::create(config);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    std::cout << "[world] ready in " << elapsed.count() << " ms: "
              << world->topology().router_count() << " routers, "
              << world->topology().interface_count() << " interfaces, "
              << world->packets_sent() << " probe packets\n";
    return world;
}

inline double percent(std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

/// Censys-style banner-labeled sample (§7.3): up to `max_count` routers of
/// the vendor, management service forced open (the banner was observed
/// historically; scan-time reachability still varies per instance).
inline std::vector<std::size_t> banner_sample(analysis::ExperimentWorld& world,
                                              stack::Vendor vendor, std::size_t max_count,
                                              std::uint64_t seed) {
    std::vector<std::size_t> candidates;
    auto& topology = world.topology();
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        if (topology.router(i).vendor() == vendor) candidates.push_back(i);
    }
    util::Rng rng(seed ^ static_cast<std::uint64_t>(vendor));
    util::shuffle(candidates, rng);
    if (candidates.size() > max_count) candidates.resize(max_count);
    for (std::size_t index : candidates) topology.router(index).set_mgmt_port_open(true);
    return candidates;
}

}  // namespace lfp::bench
