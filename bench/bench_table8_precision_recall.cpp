// Table 8 — Precision and recall per vendor under an 80/20 random split of
// the labeled data, majority-mode classification (Appendix B).
#include "analysis/precision_recall.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto rows = analysis::precision_recall(
        world->measurements(),
        {.train_fraction = 0.8, .seed = 4242, .db = {.min_occurrences = 20}});

    util::TablePrinter table("Table 8 — Precision and recall (80/20 split, majority mode)");
    table.header({"Vendor", "Recall", "Precision", "Total (test)"});
    for (const auto& row : rows) {
        if (row.test_samples < 10) continue;  // drop statistically-empty rows
        table.row({std::string(stack::to_string(row.vendor)), util::format_double(row.recall(), 2),
                   util::format_double(row.precision(), 2),
                   util::format_count(row.test_samples)});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: precision and recall ≈1 for Cisco/MikroTik/Juniper/Huawei;\n"
                 "low recall and precision for UNIX-based platforms whose stacks collide\n"
                 "(H3C, Brocade, net-snmp).\n";
    return 0;
}
