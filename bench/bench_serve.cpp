// Census-as-a-service read-path benchmark: point-lookup QPS and tail
// latency against a live SnapshotStore *while a census pass absorbs and
// publishes underneath the readers* — the property the RCU-style snapshot
// swap exists to provide.
//
// Shape: a ScaleTransport world (stateless hash-derived personas, so the
// census engine is the only real work) feeds a CensusService. Census v1
// publishes synchronously; then a second census runs on a background
// thread while the main thread hammers QueryEngine::vendor_of() with
// per-query steady_clock timing. Queries answered during the concurrent
// pass form the measured window; the version flip (v1 -> v2 mid-loop with
// no blocked or failed read) is asserted, not just observed.
//
// Gates (binding, smoke included — the read path is load-independent):
//   - point-lookup QPS while the pass absorbs >= 100k
//   - p99 lookup latency < 1 ms
//
// Env knobs: LFP_BENCH_SMOKE=1 shrinks the world for CI PRs;
// LFP_BENCH_TARGETS overrides the target count outright.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/query.hpp"
#include "serve/service.hpp"
#include "sim/scale_world.hpp"
#include "util/table.hpp"

namespace {

using namespace lfp;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::vector<net::IPv4Address> make_targets(std::size_t count) {
    std::vector<net::IPv4Address> targets;
    targets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        targets.push_back(net::IPv4Address(0x0B000000u + static_cast<std::uint32_t>(i)));
    }
    return targets;
}

}  // namespace

int main() {
    const bool smoke = env_u64("LFP_BENCH_SMOKE", 0) != 0;
    const std::size_t target_count =
        static_cast<std::size_t>(env_u64("LFP_BENCH_TARGETS", smoke ? 60'000 : 200'000));

    sim::ScaleTransport transport({.seed = 42, .responsive_fraction = 0.65, .loss_rate = 0.02});
    core::CensusPlan plan;
    plan.name = "bench-serve";
    plan.targets = make_targets(target_count);
    plan.vantages.push_back(&transport);
    plan.campaign.window = 64;
    plan.passes = 2;
    plan.worker_threads = 0;  // one worker per hardware thread

    serve::ServiceConfig config;
    config.name = "bench-serve";
    config.run_immediately = false;
    serve::CensusService service(std::move(plan), config);
    const serve::QueryEngine engine(service.store());

    std::cout << "bench_serve: " << target_count << " targets"
              << (smoke ? " (smoke)" : "") << "\n";

    const auto census_start = std::chrono::steady_clock::now();
    const std::uint64_t v1 = service.run_census_now();
    const double census_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - census_start).count();
    std::cout << "census v" << v1 << ": " << util::format_double(census_seconds, 2) << " s ("
              << util::format_double(static_cast<double>(target_count) / census_seconds, 0)
              << " targets/sec)\n";

    // --- the measured window: queries racing a concurrent census ----------
    std::atomic<bool> census_running{true};
    std::thread census_thread([&service, &census_running] {
        (void)service.run_census_now();
        census_running.store(false, std::memory_order_release);
    });

    std::vector<std::uint32_t> latency_ns;
    latency_ns.reserve(smoke ? 1u << 22 : 1u << 23);
    const std::vector<net::IPv4Address>& targets = service.runner().plan().targets;
    std::uint64_t queries = 0;
    std::uint64_t known = 0;
    std::uint64_t served_v1 = 0;
    std::uint64_t served_v2 = 0;
    std::size_t cursor = 0;
    // Stride coprime with the target count walks the whole address set
    // rather than hot-looping one cache line.
    const std::size_t stride = 7919;

    const auto window_start = std::chrono::steady_clock::now();
    while (census_running.load(std::memory_order_acquire)) {
        const net::IPv4Address target = targets[cursor];
        cursor = (cursor + stride) % targets.size();
        const auto t0 = std::chrono::steady_clock::now();
        const serve::VendorAnswer answer = engine.vendor_of(target);
        const auto t1 = std::chrono::steady_clock::now();
        if (latency_ns.size() < latency_ns.capacity()) {
            latency_ns.push_back(static_cast<std::uint32_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
        }
        ++queries;
        if (answer.known) ++known;
        if (answer.version == v1) ++served_v1;
        if (answer.version == v1 + 1) ++served_v2;
    }
    const double window_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - window_start).count();
    census_thread.join();

    const double qps = static_cast<double>(queries) / window_seconds;
    std::sort(latency_ns.begin(), latency_ns.end());
    const auto percentile = [&latency_ns](double p) -> double {
        if (latency_ns.empty()) return 0.0;
        const std::size_t index = std::min(
            latency_ns.size() - 1,
            static_cast<std::size_t>(p * static_cast<double>(latency_ns.size())));
        return static_cast<double>(latency_ns[index]);
    };

    std::cout << "concurrent window: " << util::format_double(window_seconds, 2) << " s, "
              << queries << " lookups (" << known << " known), v" << v1 << " answered "
              << served_v1 << ", v" << (v1 + 1) << " answered " << served_v2 << "\n"
              << "QPS while absorbing: " << util::format_double(qps, 0) << "\n"
              << "latency ns p50/p90/p99/max: " << util::format_double(percentile(0.50), 0)
              << " / " << util::format_double(percentile(0.90), 0) << " / "
              << util::format_double(percentile(0.99), 0) << " / "
              << (latency_ns.empty() ? 0 : latency_ns.back()) << "\n";

    bool ok = true;
    if (service.store().current() == nullptr ||
        service.store().current()->version() != v1 + 1) {
        std::cout << "FAIL: second census never published (store at v"
                  << (service.store().current() ? service.store().current()->version() : 0)
                  << ")\n";
        ok = false;
    }
    if (served_v1 == 0) {
        std::cout << "FAIL: no query was answered from v1 during the concurrent pass — the "
                     "window raced past the census\n";
        ok = false;
    }
    if (queries != served_v1 + served_v2) {
        std::cout << "FAIL: " << (queries - served_v1 - served_v2)
                  << " queries saw neither v1 nor v2 — readers observed a torn/absent "
                     "snapshot\n";
        ok = false;
    }
    if (known == 0) {
        std::cout << "FAIL: no lookup hit a census target\n";
        ok = false;
    }
    const double p99 = percentile(0.99);
    std::cout << "QPS gate (>= 100000): " << (qps >= 100000.0 ? "PASS" : "FAIL") << "\n";
    if (qps < 100000.0) ok = false;
    std::cout << "p99 gate (< 1 ms): " << (p99 < 1e6 ? "PASS" : "FAIL") << "\n";
    if (p99 >= 1e6) ok = false;

    return ok ? 0 : 1;
}
