// Path census — traceroute-discovered hops as first-class census targets.
//
// Two properties are gated, both binding (smoke included):
//
//   1. Measurement quality: a path census — traceroute sweep, hop dedup,
//      multi-pass probing, classification against a roster-calibrated
//      signature database (the paper's split: calibrate LFP broadly,
//      classify what traceroutes discover) — must agree with ground truth
//      on nearly every hop both can name, identify a bounded-below share
//      of the truth-known hops, and produce §6 vendor-diversity rows
//      (Fig 9–17 shape) matching the oracle evaluated at the measurement's
//      own coverage. This is the live-style-measurement-vs-oracle check:
//      the paper's analyses keep their shape when fed from probing.
//
//   2. Byte-determinism across vantage counts: the same path census run at
//      V ∈ {1, 2, 4} census lanes (fresh stateful world per V) must yield
//      byte-identical measurement CSV and identical PathStats — the lane
//      count parallelizes probing, it never changes what is measured.
//
// Env knobs: LFP_BENCH_SMOKE=1 shrinks the world for CI PRs;
// LFP_PATH_* overrides apply to the sweep exactly as in lfp_census.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/path_census.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"
#include "util/table.hpp"

namespace {

using namespace lfp;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    return (end != nullptr && *end == '\0') ? parsed : fallback;
}

sim::Topology build_topology(bool smoke) {
    return sim::Topology::build({.seed = 77,
                                 .num_ases = smoke ? 120u : 240u,
                                 .tier1_count = 5,
                                 .transit_fraction = 0.2,
                                 .scale = smoke ? 0.5 : 0.8});
}

analysis::PathCensusConfig sweep_config(bool smoke) {
    analysis::PathCensusConfig config;
    config.sources = 4;
    config.destinations = smoke ? 24 : 64;
    config.flows_per_pair = 1;
    return analysis::PathCensusConfig::from_env(config);
}

/// One complete path census at `vantage_count` lanes over a fresh world.
struct CensusRun {
    analysis::PathCensusResult result;
    analysis::PathStats stats;
    std::string csv;
    std::uint64_t packets = 0;
};

CensusRun run_census(bool smoke, std::size_t vantage_count) {
    // Fresh topology and internet per run: simulated routers are stateful,
    // so byte-identity across vantage counts is only meaningful from
    // identical initial conditions.
    sim::Topology topology = build_topology(smoke);
    sim::Internet internet(topology, {.seed = 13, .loss_rate = 0.02});
    std::vector<std::unique_ptr<probe::SimTransport>> transports;
    core::CensusPlan plan;
    plan.name = "bench-path-census";
    for (std::size_t lane = 0; lane < vantage_count; ++lane) {
        transports.push_back(std::make_unique<probe::SimTransport>(internet));
        plan.vantages.push_back(transports.back().get());
    }
    plan.campaign.window = 16;
    plan.passes = 2;

    core::CensusRunner runner(std::move(plan));
    const analysis::PathCensus census(topology, sweep_config(smoke));

    CensusRun run;
    run.result = census.run(runner);
    run.stats = run.result.stats(topology, analysis::PathScope::all);
    run.packets = runner.packets_sent();
    std::ostringstream csv;
    io::export_measurement_csv(csv, run.result.measurement);
    run.csv = csv.str();
    return run;
}

double exactly(const util::Ecdf& e, double k) { return e.at(k) - e.at(k - 1.0); }

}  // namespace

int main() {
    const bool smoke = env_u64("LFP_BENCH_SMOKE", 0) != 0;
    bool ok = true;

    // --- 1: measured census vs ground truth on the same world -------------
    const auto start = std::chrono::steady_clock::now();
    sim::Topology topology = build_topology(smoke);
    sim::Internet internet(topology, {.seed = 13, .loss_rate = 0.02});
    probe::SimTransport transport(internet);
    core::CensusPlan plan;
    plan.name = "bench-path-census";
    plan.vantages.push_back(&transport);
    plan.campaign.window = 16;
    plan.passes = 2;
    core::CensusRunner runner(std::move(plan));

    // Calibration: a roster census over the same world learns the signature
    // database the path hops are classified against — the paper's split
    // (calibrate LFP broadly, then classify what traceroutes discover).
    // Self-calibrating from the path hops alone leaves most signatures
    // non-unique and coverage collapses.
    probe::SimTransport calibration_transport(internet);
    core::CensusPlan calibration_plan;
    calibration_plan.name = "bench-path-calibration";
    // One interface per router: a simulated router's counters are shared
    // across its interfaces, so probing aliases back-to-back contaminates
    // the velocity features and costs classification accuracy.
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        calibration_plan.targets.push_back(topology.router(i).interfaces().front());
    }
    calibration_plan.vantages.push_back(&calibration_transport);
    calibration_plan.campaign.window = 16;
    calibration_plan.passes = 2;
    core::CensusRunner calibration_runner(std::move(calibration_plan));
    const core::Measurement calibration = calibration_runner.run_passes();
    // The default admission threshold (min_occurrences = 20) is sized for
    // the full-scale experiment world; a bench-sized world has only a few
    // hundred labeled records, so admit any signature three labeled routers
    // share — singletons are noise and cost accuracy, 20 admits nothing.
    const core::SignatureDatabase database = calibration_runner.build_database(
        std::span<const core::Measurement>(&calibration, 1), {.min_occurrences = 3});

    const analysis::PathCensus census(topology, sweep_config(smoke));
    const analysis::PathCensusResult measured = census.run(runner, &database);
    const double census_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const analysis::VendorMap truth_map = census.ground_truth(measured.targets);
    const analysis::PathAgreement agreement =
        analysis::PathCensus::agreement(measured.vendors, truth_map, measured.targets);

    const analysis::PathStats measured_stats = measured.stats(topology, analysis::PathScope::all);
    const analysis::PathAnalyzer truth_analyzer(topology, truth_map);
    const analysis::PathStats truth_stats =
        truth_analyzer.analyze(measured.discovery.traces, analysis::PathScope::all, {});

    // The oracle at the measurement's own coverage: truth verdicts
    // restricted to the hops the measured map names. Gating the Fig 11 rows
    // against *this* map separates classification error (which the gates
    // must catch) from coverage bias (which is inherent to live-style
    // probing — silent routers and non-unique signatures identify nothing).
    analysis::VendorMap restricted_truth;
    for (const net::IPv4Address address : measured.targets.targets) {
        const auto expected = truth_map.lookup(address);
        if (expected && measured.vendors.lookup(address)) {
            restricted_truth.assign(address, *expected);
        }
    }
    const analysis::PathAnalyzer restricted_analyzer(topology, restricted_truth);
    const analysis::PathStats restricted_stats =
        restricted_analyzer.analyze(measured.discovery.traces, analysis::PathScope::all, {});

    std::cout << "bench_path_census" << (smoke ? " (smoke)" : "") << ": "
              << measured.discovery.traces.size() << " paths, " << measured.targets.hops_listed
              << " hops -> " << measured.targets.targets.size() << " targets ("
              << measured.targets.duplicates_collapsed << " dup, "
              << measured.targets.unroutable_dropped << " unroutable), census "
              << util::format_double(census_seconds, 2) << " s, " << runner.packets_sent()
              << " packets, " << measured.stale_unresponsive << " stale-unresponsive\n";
    std::cout << "agreement: accuracy=" << util::format_double(agreement.accuracy(), 4)
              << " coverage=" << util::format_double(agreement.coverage(), 4)
              << " (truth=" << agreement.truth_known << " measured=" << agreement.measured_known
              << " both=" << agreement.both_known << " of " << agreement.hops << " hops)\n";

    const double measured_single = exactly(measured_stats.vendors_per_path, 1.0);
    const double truth_single = exactly(truth_stats.vendors_per_path, 1.0);
    const double restricted_single = exactly(restricted_stats.vendors_per_path, 1.0);
    std::cout << "Fig 11 rows (measured | oracle@coverage | oracle): paths="
              << measured_stats.paths_considered << " | " << restricted_stats.paths_considered
              << " | " << truth_stats.paths_considered
              << ", identified%=" << util::format_double(measured_stats.identified_fraction.mean(), 1)
              << " | " << util::format_double(restricted_stats.identified_fraction.mean(), 1)
              << " | " << util::format_double(truth_stats.identified_fraction.mean(), 1)
              << ", 1-vendor=" << util::format_percent(measured_single) << " | "
              << util::format_percent(restricted_single) << " | "
              << util::format_percent(truth_single)
              << ", combinations=" << measured_stats.combinations.items().size() << " | "
              << restricted_stats.combinations.items().size() << " | "
              << truth_stats.combinations.items().size() << "\n";

    // Gates. Accuracy: where measurement and oracle both name a hop they
    // must almost always agree (SNMP labels are authoritative; unique LFP
    // matches resolve through signatures the same world induced). The
    // Fig 11 shape gates compare against the oracle *at the measurement's
    // coverage* — identical hop domain, so any row drift is classification
    // error, not the coverage bias inherent to live-style probing.
    struct Gate {
        const char* name;
        bool pass;
    };
    const Gate gates[] = {
        {"accuracy >= 0.95", agreement.accuracy() >= 0.95},
        {"coverage >= 0.30", agreement.coverage() >= 0.30},
        {"paths considered match oracle@coverage",
         measured_stats.paths_considered == restricted_stats.paths_considered},
        {"1-vendor share within 0.10 of oracle@coverage",
         std::abs(measured_single - restricted_single) <= 0.10},
        {"mean vendors/path within 0.25 of oracle@coverage",
         !measured_stats.vendors_per_path.empty() &&
             !restricted_stats.vendors_per_path.empty() &&
             std::abs(measured_stats.vendors_per_path.mean() -
                      restricted_stats.vendors_per_path.mean()) <= 0.25},
        {"some hop identified", measured_stats.identified_fraction.mean() > 0.0},
    };
    for (const Gate& gate : gates) {
        std::cout << "gate " << gate.name << ": " << (gate.pass ? "PASS" : "FAIL") << "\n";
        if (!gate.pass) ok = false;
    }

    // --- 2: byte-determinism across vantage counts -------------------------
    const std::size_t vantage_counts[] = {1, 2, 4};
    std::vector<CensusRun> runs;
    for (const std::size_t count : vantage_counts) {
        const auto t0 = std::chrono::steady_clock::now();
        runs.push_back(run_census(smoke, count));
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        std::cout << "V=" << count << ": " << runs.back().result.measurement.records.size()
                  << " records, " << runs.back().packets << " packets, "
                  << util::format_double(seconds, 2) << " s\n";
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        const bool csv_identical = runs[i].csv == runs[0].csv;
        std::cout << "gate V=" << vantage_counts[i] << " CSV byte-identical to V=1: "
                  << (csv_identical ? "PASS" : "FAIL") << "\n";
        if (!csv_identical) ok = false;
        const bool stats_identical =
            runs[i].stats.paths_considered == runs[0].stats.paths_considered &&
            runs[i].stats.vendors_per_path.sorted_samples() ==
                runs[0].stats.vendors_per_path.sorted_samples() &&
            runs[i].stats.identified_fraction.sorted_samples() ==
                runs[0].stats.identified_fraction.sorted_samples();
        std::cout << "gate V=" << vantage_counts[i] << " PathStats identical to V=1: "
                  << (stats_identical ? "PASS" : "FAIL") << "\n";
        if (!stats_identical) ok = false;
    }

    return ok ? 0 : 1;
}
