// §7.4 — Family-level fingerprinting: sample routers of one vendor with
// SNMPv2c-style sysDescr ground truth (the simulation's profile family),
// and test whether LFP signatures separate OS families within the vendor
// (the paper finds unique signatures for 3 XR, 3 NX and 7 IOS builds).
#include "analysis/family_analysis.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "probe/sim_transport.hpp"
#include "util/rng.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();
    probe::SimTransport transport(world->internet());
    core::LfpPipeline pipeline(transport);

    // The paper's sample: 400 Cisco routers exposing sysDescr.
    std::vector<std::size_t> sample;
    {
        auto& topology = world->topology();
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < topology.router_count(); ++i) {
            const auto& router = topology.router(i);
            if (router.vendor() == stack::Vendor::cisco &&
                (router.responds_icmp() || router.responds_tcp() || router.responds_udp())) {
                candidates.push_back(i);
            }
        }
        util::Rng rng(0xFA171);
        util::shuffle(candidates, rng);
        if (candidates.size() > 400) candidates.resize(400);
        sample = std::move(candidates);
    }

    analysis::FamilyClassifier classifier(5);
    std::vector<std::pair<core::Signature, std::string>> probes_with_truth;
    for (std::size_t index : sample) {
        const auto& router = world->topology().router(index);
        const net::IPv4Address target = router.interfaces()[0];
        auto measurement = pipeline.measure("family", {&target, 1});
        const auto& record = measurement.records[0];
        if (record.features.empty()) continue;
        classifier.train(record.signature, router.profile().family);
        probes_with_truth.emplace_back(record.signature, router.profile().family);
    }
    classifier.finalize();

    const auto counts = classifier.counts();
    std::cout << "\nCisco sample: " << sample.size() << " routers, "
              << probes_with_truth.size() << " responsive\n"
              << "Distinct signatures admitted: " << counts.unique + counts.ambiguous
              << " (family-unique: " << counts.unique << ", ambiguous: " << counts.ambiguous
              << ")\n";

    util::TablePrinter table("§7.4 — Signatures uniquely identifying a Cisco OS family");
    table.header({"OS family", "unique signatures"});
    for (const auto& [family, count] : classifier.unique_signatures_per_family()) {
        table.row({family, std::to_string(count)});
    }
    table.print(std::cout);

    // Self-consistency: classify the sample with the family classifier.
    std::size_t classified = 0;
    std::size_t correct = 0;
    for (const auto& [signature, truth] : probes_with_truth) {
        auto verdict = classifier.classify(signature);
        if (!verdict) continue;
        ++classified;
        if (*verdict == truth) ++correct;
    }
    std::cout << "\nFamily classification on the sample: " << classified << " classified, "
              << util::format_percent(classified == 0 ? 0.0
                                                       : static_cast<double>(correct) /
                                                             static_cast<double>(classified))
              << " correct\n"
              << "Paper shape: the sample's signatures fall into the vendor's most common\n"
                 "signatures; several map 1:1 to a single IOS lineage — signatures carry\n"
                 "model/family information beyond the vendor.\n";
    return 0;
}
