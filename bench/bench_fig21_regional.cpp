// Figure 21 (Appendix A) — Router vendor popularity per continent, counted
// over ITDK alias sets with the combined SNMPv3+LFP mapping.
#include "analysis/as_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map =
        analysis::VendorMap::from_measurement(itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto verdicts =
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map);
    const auto regional = analysis::regional_distribution(verdicts, world->topology());

    util::TablePrinter table("Figure 21 — Router vendor popularity per continent");
    table.header({"Continent", "Routers", "Cisco", "Huawei", "Juniper", "Alcatel/Nokia",
                  "MikroTik", "Other"});
    for (const auto& [continent, vendors] : regional) {
        std::size_t total = 0;
        for (const auto& [vendor, count] : vendors) total += count;
        auto share = [&](stack::Vendor v) {
            auto it = vendors.find(v);
            const std::size_t count = it == vendors.end() ? 0 : it->second;
            return util::format_percent(total == 0 ? 0.0
                                                   : static_cast<double>(count) /
                                                         static_cast<double>(total));
        };
        std::size_t major = 0;
        for (stack::Vendor v : {stack::Vendor::cisco, stack::Vendor::huawei,
                                stack::Vendor::juniper, stack::Vendor::nokia,
                                stack::Vendor::mikrotik}) {
            auto it = vendors.find(v);
            if (it != vendors.end()) major += it->second;
        }
        table.row({std::string(sim::continent_code(continent)), util::format_count(total),
                   share(stack::Vendor::cisco), share(stack::Vendor::huawei),
                   share(stack::Vendor::juniper), share(stack::Vendor::nokia),
                   share(stack::Vendor::mikrotik),
                   util::format_percent(total == 0 ? 0.0
                                                   : static_cast<double>(total - major) /
                                                         static_cast<double>(total))});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: Cisco 70-82% in NA/Oceania, ~63% in Europe, ~64% in\n"
                 "Africa; Huawei ~41% in Asia and ~36% in South America; Juniper strongest\n"
                 "in North America (~17%). A handful of manufacturers cover >95%\n"
                 "everywhere.\n";
    return 0;
}
