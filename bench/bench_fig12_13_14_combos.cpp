// Figures 12, 13, 14 — Top router-vendor combinations on paths: overall,
// intra-US, and inter-US. Cisco/Juniper combinations dominate, especially
// inside the US.
#include <algorithm>
#include "analysis/path_analysis.hpp"
#include "bench_common.hpp"

namespace {

void print_top(const char* title, const lfp::analysis::PathStats& stats) {
    using namespace lfp;
    std::vector<util::BarRow> bars;
    double covered = 0.0;
    for (const auto& [combo, count] : stats.combinations.top(9)) {
        const double share = bench::percent(count, stats.combinations.total());
        bars.push_back({combo, share});
        covered += share;
    }
    std::reverse(bars.begin(), bars.end());  // paper plots smallest on top
    util::print_bars(std::cout, title, bars);
    std::cout << "  top-9 combinations cover " << util::format_double(covered, 1)
              << "% of classified paths\n";
}

}  // namespace

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto vendors = analysis::VendorMap::from_measurement(
        world->ripe5_measurement(), analysis::VendorMap::Method::combined);
    analysis::PathAnalyzer analyzer(world->topology(), vendors);
    const auto& traces = world->ripe5().traces;

    print_top("Figure 12 — Top vendor combinations (all paths)",
              analyzer.analyze(traces, analysis::PathScope::all, {}));
    print_top("Figure 13 — Top vendor combinations (intra-US paths)",
              analyzer.analyze(traces, analysis::PathScope::intra_us, {}));
    print_top("Figure 14 — Top vendor combinations (inter-US paths)",
              analyzer.analyze(traces, analysis::PathScope::inter_us, {}));

    std::cout << "\nPaper shape: {Cisco, Juniper}, {Cisco}, {Juniper} are the top three\n"
                 "overall (~60% combined); intra-US is Cisco/Juniper-heavier still (two\n"
                 "thirds); Huawei/MikroTik combinations appear mainly off-US paths.\n";
    return 0;
}
