// §4.2 / §8 — Longitudinal signature stability: signatures of IPs observed
// across the five RIPE-like snapshots stay stable over the simulated ten
// months ("the signatures we discover remain stable", §3.7).
#include "analysis/longitudinal.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    // The RIPE measurements only (the first five).
    const auto ripe = std::span(world->measurements().data(), 5);
    const auto report = analysis::signature_stability(ripe);

    util::TablePrinter table("Signature stability across consecutive RIPE snapshots");
    table.header({"pair", "common IPs", "identical sig", "changed", "vendor changed"});
    for (const auto& pair : report.pairs) {
        table.row({pair.first + " vs " + pair.second, util::format_count(pair.common_ips),
                   util::format_percent(pair.stability()),
                   util::format_count(pair.changed_signature),
                   util::format_count(pair.vendor_changed)});
    }
    table.print(std::cout);

    std::cout << "\nIPs responsive in all five snapshots: "
              << util::format_count(report.ips_in_all_snapshots) << "; signature constant for "
              << util::format_percent(report.overall_stability())
              << " of them across the full ten months.\n"
              << "Paper shape: signatures are stable across the ten-month collection\n"
                 "(the paper re-uses signatures across snapshots and finds only 2\n"
                 "cross-dataset vendor conflicts); residual changes here are packet-loss\n"
                 "artifacts on the IPID features.\n";
    return 0;
}
