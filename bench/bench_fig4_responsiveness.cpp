// Figure 4 — Number of responsive protocols per IP (ECDF), RIPE-5 vs ITDK.
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    auto protocols_ecdf = [](const core::Measurement& measurement) {
        util::Ecdf ecdf;
        for (const auto& record : measurement.records) {
            ecdf.add(static_cast<double>(record.probes.responsive_protocol_count()));
        }
        return ecdf;
    };

    const auto ripe = protocols_ecdf(world->ripe5_measurement());
    const auto itdk = protocols_ecdf(world->itdk_measurement());

    util::print_ecdf_set(std::cout, "Figure 4 — Responsive protocols per IP",
                         {{"ITDK", &itdk}, {"RIPE", &ripe}}, 4, "protocols");

    auto report = [](const char* name, const util::Ecdf& ecdf) {
        std::cout << "  " << name << ": >=1 protocol " << util::format_percent(1.0 - ecdf.at(0.0))
                  << ", all 3 protocols " << util::format_percent(1.0 - ecdf.at(2.0)) << "\n";
    };
    std::cout << "\n";
    report("RIPE-5", ripe);
    report("ITDK  ", itdk);
    std::cout << "Paper: RIPE 72.3% >=1 and ~35% all three; ITDK 90.7% >=1 and ~50% all\n"
                 "three (alias-resolved IPs are responsive by construction).\n";
    return 0;
}
