// Figure 22 (Appendix A) — The largest networks by identified routers:
// SNMPv3-only vs SNMPv3+LFP router counts per AS (LFP's per-network gain).
#include <algorithm>
#include "analysis/as_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map =
        analysis::VendorMap::from_measurement(itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto verdicts =
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map);

    struct AsRow {
        std::uint32_t asn = 0;
        std::size_t snmp = 0;
        std::size_t combined = 0;
    };
    std::map<std::uint32_t, AsRow> by_as;
    for (const auto& verdict : verdicts) {
        AsRow& row = by_as[verdict.asn];
        row.asn = verdict.asn;
        if (verdict.snmp_vendor) ++row.snmp;
        if (verdict.combined()) ++row.combined;
    }
    std::vector<AsRow> rows;
    for (auto& [asn, row] : by_as) rows.push_back(row);
    std::sort(rows.begin(), rows.end(),
              [](const AsRow& a, const AsRow& b) { return a.combined > b.combined; });
    if (rows.size() > 13) rows.resize(13);

    util::TablePrinter table("Figure 22 — Top-13 ASes: SNMPv3 vs SNMPv3+LFP router counts");
    table.header({"AS (region)", "SNMPv3", "SNMPv3+LFP", "LFP gain"});
    for (const auto& row : rows) {
        const auto* geo = world->topology().geo().lookup(row.asn);
        const std::string label = "AS" + std::to_string(row.asn) + " (" +
                                  std::string(geo ? sim::continent_code(geo->continent) : "?") +
                                  ")";
        const double gain = row.snmp == 0 ? 0.0
                                          : 100.0 * static_cast<double>(row.combined - row.snmp) /
                                                static_cast<double>(row.snmp);
        table.row({label, util::format_count(row.snmp), util::format_count(row.combined),
                   "+" + util::format_double(gain, 0) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: the top networks span all regions; LFP's additional\n"
                 "contribution varies from almost nothing to >100% per network.\n";
    return 0;
}
