// Ablation — probes per protocol: LFP sends three probes per protocol; with
// two, duplicate-IPID stacks are invisible and counter classes lose
// confidence; with one, IPID features vanish entirely. Quantifies why the
// paper settled on 3 x 3 + 1 packets.
#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

/// Copy of a probe result truncated to the first `rounds` responses per
/// protocol (the later probes are treated as never sent).
lfp::probe::TargetProbeResult truncate_rounds(const lfp::probe::TargetProbeResult& full,
                                              std::size_t rounds) {
    lfp::probe::TargetProbeResult out = full;
    for (auto& row : out.probes) {
        for (std::size_t round = rounds; round < lfp::probe::kRoundsPerProtocol; ++round) {
            row[round].response.reset();
        }
    }
    return out;
}

}  // namespace

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    util::TablePrinter table("Ablation — probes per protocol");
    table.header({"probes/protocol", "unique sigs", "non-unique", "coverage", "accuracy"});

    for (std::size_t rounds : {3u, 2u, 1u}) {
        core::FeatureExtractorConfig extractor;
        extractor.min_responses = std::min<std::size_t>(2, rounds);

        // Re-extract features from the stored raw exchanges, truncated.
        core::SignatureDatabase database(
            {.min_occurrences = world->config().signature_min_occurrences});
        struct Rebuilt {
            core::Signature signature;
            bool lfp_responsive;
            std::optional<stack::Vendor> snmp_vendor;
            net::IPv4Address target;
        };
        std::vector<Rebuilt> rebuilt;
        for (const auto& measurement : world->measurements()) {
            for (const auto& record : measurement.records) {
                const auto truncated = truncate_rounds(record.probes, rounds);
                const auto features = core::extract_features(truncated, extractor);
                Rebuilt r;
                r.signature = core::Signature::from_features(features);
                r.lfp_responsive = !features.empty();
                r.snmp_vendor = record.snmp_vendor;
                r.target = record.probes.target;
                if (r.snmp_vendor && r.lfp_responsive) {
                    database.add_labeled(r.signature, *r.snmp_vendor);
                }
                rebuilt.push_back(std::move(r));
            }
        }
        database.finalize();
        const auto counts = database.full_signature_counts();

        const core::LfpClassifier classifier(database);
        std::size_t responsive = 0;
        std::size_t identified = 0;
        std::size_t correct = 0;
        for (const auto& r : rebuilt) {
            if (!r.lfp_responsive) continue;
            ++responsive;
            const auto verdict = classifier.classify(r.signature);
            if (!verdict.identified()) continue;
            ++identified;
            const std::size_t index = world->topology().find_by_interface(r.target);
            if (index != sim::Topology::npos &&
                world->topology().router(index).vendor() == *verdict.vendor) {
                ++correct;
            }
        }
        table.row({std::to_string(rounds), util::format_count(counts.unique),
                   util::format_count(counts.non_unique),
                   util::format_percent(responsive == 0 ? 0.0
                                                         : static_cast<double>(identified) /
                                                               static_cast<double>(responsive)),
                   util::format_percent(identified == 0 ? 0.0
                                                         : static_cast<double>(correct) /
                                                               static_cast<double>(identified))});
    }
    table.print(std::cout);

    std::cout << "\nReading: two probes preserve most discrimination (steps still visible);\n"
                 "one probe cannot classify IPID behaviour at all — the 9-probe budget is\n"
                 "the minimum that observes duplicates and verifies monotonicity twice\n"
                 "(the paper's misclassification bound in §3.6 relies on that).\n";
    return 0;
}
