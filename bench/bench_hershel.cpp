// §7.3.2 — Hershel comparison: single-packet SYN-ACK fingerprinting on the
// banner sample. Coverage ≈ open-port rate; vendor accuracy <1% for the top
// router vendors; Linux-derived platforms (MikroTik) resolve to "Linux".
#include <map>

#include "baselines/hershel.hpp"
#include "bench_common.hpp"
#include "probe/sim_transport.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();
    probe::SimTransport transport(world->internet());
    baselines::HershelClassifier hershel;

    const stack::Vendor vendors[] = {stack::Vendor::cisco,    stack::Vendor::juniper,
                                     stack::Vendor::huawei,   stack::Vendor::ericsson,
                                     stack::Vendor::mikrotik, stack::Vendor::nokia};

    util::TablePrinter table("§7.3.2 — Hershel on the banner sample");
    table.header({"Vendor", "N", "coverage", "vendor accuracy", "top OS verdict"});
    for (stack::Vendor vendor : vendors) {
        const auto sample = bench::banner_sample(*world, vendor, 400, 0x4E5);
        std::size_t covered = 0;
        std::size_t correct = 0;
        util::Counter verdicts;
        for (std::size_t index : sample) {
            auto verdict = hershel.fingerprint(
                transport, world->topology().router(index).interfaces()[0]);
            if (!verdict) continue;
            ++covered;
            verdicts.add(verdict->os_label);
            if (verdict->vendor == vendor) ++correct;
        }
        const auto top = verdicts.top(1);
        table.row({std::string(stack::to_string(vendor)), std::to_string(sample.size()),
                   util::format_percent(bench::percent(covered, sample.size()) / 100.0),
                   util::format_percent(covered == 0 ? 0.0
                                                     : static_cast<double>(correct) /
                                                           static_cast<double>(covered)),
                   top.empty() ? "-" : top[0].first});
    }
    table.print(std::cout);

    std::cout << "\nPackets sent: " << hershel.packets_sent()
              << " (single SYN per target — cheaper than LFP but router-blind)\n"
              << "Paper shape: ~50% coverage on the banner sample, <1% vendor accuracy\n"
                 "for the top-3 vendors, MikroTik identified as generic Linux.\n";
    return 0;
}
