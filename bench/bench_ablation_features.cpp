// Ablation — feature-group knockouts: how much each Table 1 feature group
// contributes to signature uniqueness, coverage and accuracy. (The paper
// motivates each group qualitatively; this measures the design choices.)
#include "analysis/ablation.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto masks = analysis::standard_ablation_masks();
    const auto results = analysis::run_ablations(
        world->measurements(), world->topology(), masks,
        {.min_occurrences = world->config().signature_min_occurrences});

    util::TablePrinter table("Ablation — feature-group knockouts");
    table.header({"configuration", "unique sigs", "non-unique", "coverage", "accuracy"});
    for (const auto& result : results) {
        table.row({result.label, util::format_count(result.unique_signatures),
                   util::format_count(result.non_unique_signatures),
                   util::format_percent(result.coverage),
                   util::format_percent(result.accuracy)});
    }
    table.print(std::cout);

    std::cout << "\nReading: the full set wins on coverage at equal accuracy; dropping the\n"
                 "IPID classes or the iTTLs collapses signature counts (they carry most\n"
                 "entropy); the iTTL-only configuration approximates the TTL-tuple\n"
                 "related work — far coarser, as the paper argues in §2.\n";
    return 0;
}
