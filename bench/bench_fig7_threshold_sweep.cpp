// Figure 7 — Sensitivity of the signature count to the minimum-occurrence
// threshold: unique and non-unique full-signature counts for thresholds
// 1..100. The curve collapses sharply and flattens past ~10-20.
#include "bench_common.hpp"
#include "core/pipeline.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    // Rebuild an unthresholded database so the sweep can re-admit at will.
    core::SignatureDatabase db({.min_occurrences = 1});
    for (const auto& measurement : world->measurements()) {
        for (const auto& record : measurement.records) {
            if (!record.snmp_vendor || record.features.empty()) continue;
            db.add_labeled(record.signature, *record.snmp_vendor);
        }
    }
    db.finalize();

    util::TablePrinter table("Figure 7 — Signature count vs occurrence threshold");
    table.header({"threshold", "unique sigs", "non-unique sigs"});
    std::vector<util::BarRow> bars;
    for (std::size_t threshold : {1u,  2u,  3u,  5u,  8u,  10u, 15u, 20u,
                                  30u, 40u, 50u, 60u, 80u, 100u}) {
        const auto counts = db.counts_at_threshold(threshold);
        table.row({std::to_string(threshold), util::format_count(counts.unique),
                   util::format_count(counts.non_unique)});
        bars.push_back({"t=" + std::to_string(threshold),
                        static_cast<double>(counts.unique + counts.non_unique)});
    }
    table.print(std::cout);
    util::print_bars(std::cout, "total admitted signatures", bars, "sigs");

    const auto at10 = db.counts_at_threshold(10);
    const auto at20 = db.counts_at_threshold(20);
    std::cout << "\nDelta between thresholds 10 and 20: "
              << (at10.unique + at10.non_unique) - (at20.unique + at20.non_unique)
              << " signatures (paper: choosing 10 vs 20 changes almost nothing —\n"
                 "the knee is below 10; the paper picks 20).\n";
    return 0;
}
