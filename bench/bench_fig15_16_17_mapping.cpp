// Figures 15, 16, 17 — IP-to-vendor and router-to-vendor mapping, split into
// SNMPv3-only / both / LFP-only contributions: RIPE-5 IPs (Fig. 15), ITDK
// IPs (Fig. 16), ITDK routers via alias sets (Fig. 17).
#include <algorithm>
#include <map>

#include "analysis/as_analysis.hpp"
#include "bench_common.hpp"

namespace {

struct Split {
    std::size_t snmp_only = 0;
    std::size_t both = 0;
    std::size_t lfp_only = 0;
    [[nodiscard]] std::size_t total() const { return snmp_only + both + lfp_only; }
};

void print_split(const char* title, const std::map<lfp::stack::Vendor, Split>& rows) {
    using namespace lfp;
    util::TablePrinter table(title);
    table.header({"Vendor", "SNMPv3 only", "both", "LFP only", "total", "LFP gain"});
    std::vector<std::pair<stack::Vendor, Split>> ordered(rows.begin(), rows.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.second.total() > b.second.total(); });
    std::size_t shown = 0;
    for (const auto& [vendor, split] : ordered) {
        if (shown++ == 6) break;
        const std::size_t snmp_total = split.snmp_only + split.both;
        const double gain = snmp_total == 0 ? 0.0
                                            : 100.0 * static_cast<double>(split.lfp_only) /
                                                  static_cast<double>(snmp_total);
        table.row({std::string(stack::to_string(vendor)), util::format_count(split.snmp_only),
                   util::format_count(split.both), util::format_count(split.lfp_only),
                   util::format_count(split.total()), "+" + util::format_double(gain, 1) + "%"});
    }
    table.print(std::cout);
}

}  // namespace

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    // Figures 15/16: IP-level split per vendor.
    for (const auto* name : {"RIPE-5", "ITDK"}) {
        const auto& measurement = world->measurement(name);
        std::map<stack::Vendor, Split> rows;
        std::size_t snmp_ips = 0;
        std::size_t all_ips = 0;
        for (const auto& record : measurement.records) {
            const bool lfp = record.lfp.identified();
            const auto vendor =
                record.snmp_vendor ? record.snmp_vendor : record.lfp.vendor;
            if (!vendor) continue;
            ++all_ips;
            if (record.snmp_vendor) ++snmp_ips;
            if (record.snmp_vendor && lfp) {
                ++rows[*vendor].both;
            } else if (record.snmp_vendor) {
                ++rows[*vendor].snmp_only;
            } else {
                ++rows[*vendor].lfp_only;
            }
        }
        print_split((std::string("Figure ") + (std::string(name) == "RIPE-5" ? "15" : "16") +
                     " — IPs to vendors, SNMPv3 vs LFP (" + name + ")")
                        .c_str(),
                    rows);
        std::cout << "  identified IPs total: " << all_ips << " vs SNMPv3-only " << snmp_ips
                  << " → x" << util::format_double(snmp_ips == 0 ? 0.0
                                                                 : static_cast<double>(all_ips) /
                                                                       static_cast<double>(
                                                                           snmp_ips),
                                                   2)
                  << " coverage\n";
    }

    // Figure 17: router-level split over ITDK alias sets.
    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map =
        analysis::VendorMap::from_measurement(itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto verdicts =
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map);

    std::map<stack::Vendor, Split> router_rows;
    std::size_t conflicts = 0;
    std::size_t identified = 0;
    for (const auto& verdict : verdicts) {
        const auto vendor = verdict.combined();
        if (!vendor) continue;
        ++identified;
        if (verdict.conflicting_interfaces) ++conflicts;
        if (verdict.snmp_vendor && verdict.lfp_vendor) {
            ++router_rows[*vendor].both;
        } else if (verdict.snmp_vendor) {
            ++router_rows[*vendor].snmp_only;
        } else {
            ++router_rows[*vendor].lfp_only;
        }
    }
    print_split("Figure 17 — Routers (alias sets) to vendors, SNMPv3 vs LFP (ITDK)",
                router_rows);
    std::cout << "  alias sets with conflicting interface verdicts: "
              << util::format_percent(identified == 0 ? 0.0
                                                       : static_cast<double>(conflicts) /
                                                             static_cast<double>(identified))
              << " (paper: ~0.65%)\n"
              << "\nPaper shape: LFP roughly doubles fingerprintable IPs and routers; the\n"
                 "largest relative gains go to Juniper (+650% RIPE) and Alcatel/Nokia,\n"
                 "whose SNMPv3 exposure is low; Cisco's share drops from ~65% to ~50%.\n";
    return 0;
}
