// Figures 9 and 10 — Identifiable routers along a path (RIPE-5, ≥3 hops):
// the fraction of hops whose vendor LFP can name, for all / intra-US /
// inter-US paths (Fig. 9), and LFP vs the SNMPv3-only baseline (Fig. 10).
#include "analysis/path_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto combined = analysis::VendorMap::from_measurement(
        world->ripe5_measurement(), analysis::VendorMap::Method::combined);
    const auto snmp_only = analysis::VendorMap::from_measurement(
        world->ripe5_measurement(), analysis::VendorMap::Method::snmpv3);

    analysis::PathAnalyzer lfp_analyzer(world->topology(), combined);
    analysis::PathAnalyzer snmp_analyzer(world->topology(), snmp_only);
    const auto& traces = world->ripe5().traces;

    const auto all_stats = lfp_analyzer.analyze(traces, analysis::PathScope::all, {});
    const auto intra = lfp_analyzer.analyze(traces, analysis::PathScope::intra_us, {});
    const auto inter = lfp_analyzer.analyze(traces, analysis::PathScope::inter_us, {});
    util::print_ecdf_set(std::cout,
                         "Figure 9 — % of identified hops per path (SNMPv3+LFP)",
                         {{"All", &all_stats.identified_fraction},
                          {"IntraUS", &intra.identified_fraction},
                          {"InterUS", &inter.identified_fraction}},
                         20, "% hops");

    const auto snmp_stats = snmp_analyzer.analyze(traces, analysis::PathScope::all, {});
    util::print_ecdf_set(std::cout, "Figure 10 — LFP vs SNMPv3-only identification",
                         {{"LFP", &all_stats.identified_fraction},
                          {"SNMPv3", &snmp_stats.identified_fraction}},
                         20, "% hops");

    auto k_share = [](const analysis::PathStats& stats, std::size_t k) {
        return stats.paths_considered == 0
                   ? 0.0
                   : static_cast<double>(stats.paths_with_k_identified(k)) /
                         static_cast<double>(stats.paths_considered);
    };
    std::cout << "\nPaths (>=3 hops) with at least one hop identified:  LFP "
              << util::format_percent(k_share(all_stats, 1)) << " vs SNMPv3 "
              << util::format_percent(k_share(snmp_stats, 1)) << " (paper: 82% vs 35%)\n"
              << "Paths with at least two hops identified:            LFP "
              << util::format_percent(k_share(all_stats, 2)) << " vs SNMPv3 "
              << util::format_percent(k_share(snmp_stats, 2)) << " (paper: 62% LFP)\n"
              << "Intra-US paths with >=2 identified: " << util::format_percent(k_share(intra, 2))
              << "   inter-US: " << util::format_percent(k_share(inter, 2))
              << " (paper: ~60% / ~58%)\n";
    return 0;
}
