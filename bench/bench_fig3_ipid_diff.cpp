// Figure 3 — Distribution (percent per bin) of signed IPID differences for
// consecutive responses of fully-responsive RIPE-5 IPs, ±10,000 range.
#include <algorithm>
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    util::Histogram histogram(-10000.0, 10000.0, 20);  // 1000-wide bins
    std::size_t within_threshold = 0;
    std::size_t total_diffs = 0;

    for (const auto& record : world->ripe5_measurement().records) {
        if (!record.features.complete()) continue;
        std::vector<std::pair<std::uint32_t, std::uint16_t>> responses;
        for (const auto& row : record.probes.probes) {
            for (const auto& exchange : row) {
                if (!exchange.responded()) continue;
                auto parsed = net::parse_packet(*exchange.response);
                if (!parsed) continue;
                responses.emplace_back(exchange.send_index, parsed.value().ip.identification);
            }
        }
        std::sort(responses.begin(), responses.end());
        for (std::size_t i = 1; i < responses.size(); ++i) {
            const int diff = static_cast<int>(responses[i].second) -
                             static_cast<int>(responses[i - 1].second);
            histogram.add(diff);
            ++total_diffs;
            if (diff >= 0 && diff <= 1300) ++within_threshold;
        }
    }

    std::cout << "\n== Figure 3 — IPID differences for consecutive responses (RIPE-5) ==\n";
    std::vector<util::BarRow> bars;
    for (std::size_t bin = 0; bin < histogram.bin_count(); ++bin) {
        bars.push_back({util::format_double(histogram.bin_low(bin), 0) + ".." +
                            util::format_double(histogram.bin_high(bin), 0),
                        histogram.percent(bin)});
    }
    util::print_bars(std::cout, "percent of consecutive-response IPID differences", bars);

    std::cout << "\nDifferences in [0, 1300]: "
              << util::format_percent(static_cast<double>(within_threshold) /
                                      static_cast<double>(total_diffs))
              << " of " << total_diffs
              << " (paper: ~20% near zero; ~90% captured by the 1300 threshold when\n"
                 "counting sequential counters; the rest spread over the full range)\n";
    return 0;
}
