// Figures 5 and 6 — Responses per protocol (0..3) for RIPE-5 and ITDK:
// an IP answers all three probes of a protocol or none (near-horizontal
// line between 0 and 3).
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    auto per_protocol = [](const core::Measurement& measurement, probe::ProtoIndex protocol) {
        util::Ecdf ecdf;
        for (const auto& record : measurement.records) {
            ecdf.add(static_cast<double>(record.probes.responses_for(protocol)));
        }
        return ecdf;
    };

    for (const auto* name : {"RIPE-5", "ITDK"}) {
        const auto& measurement = world->measurement(name);
        const auto icmp = per_protocol(measurement, probe::ProtoIndex::icmp);
        const auto tcp = per_protocol(measurement, probe::ProtoIndex::tcp);
        const auto udp = per_protocol(measurement, probe::ProtoIndex::udp);
        util::print_ecdf_set(std::cout,
                             std::string("Figure ") + (std::string(name) == "RIPE-5" ? "5" : "6") +
                                 " — Responses per protocol (" + name + ")",
                             {{"ICMP", &icmp}, {"TCP", &tcp}, {"UDP", &udp}}, 4, "responses");
        auto all3 = [](const util::Ecdf& e) { return 1.0 - e.at(2.0); };
        auto partial = [](const util::Ecdf& e) { return e.at(2.0) - e.at(0.0); };
        std::cout << "  all-3-responses: ICMP " << util::format_percent(all3(icmp)) << ", TCP "
                  << util::format_percent(all3(tcp)) << ", UDP "
                  << util::format_percent(all3(udp)) << "\n"
                  << "  partial (1-2 of 3, packet loss): ICMP "
                  << util::format_percent(partial(icmp)) << ", TCP "
                  << util::format_percent(partial(tcp)) << ", UDP "
                  << util::format_percent(partial(udp)) << "\n";
    }
    std::cout << "\nPaper: ICMP 65.7% (RIPE) / 84.4% (ITDK) full responses; TCP and UDP move\n"
                 "together (39.5% RIPE, 63.6% ITDK); the 0→3 segment is nearly flat.\n";
    return 0;
}
