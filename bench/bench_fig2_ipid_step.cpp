// Figure 2 — ECDF of the maximum IPID step between consecutive responses
// per fully-responsive IP (RIPE-5 vs ITDK), with the 1300 threshold that
// separates sequential from random counters.
#include <algorithm>
#include "bench_common.hpp"
#include "core/ipid_classifier.hpp"

namespace {

lfp::util::Ecdf max_step_ecdf(const lfp::core::Measurement& measurement) {
    using namespace lfp;
    util::Ecdf ecdf;
    for (const auto& record : measurement.records) {
        if (!record.features.complete()) continue;
        // Merge all nine response IPIDs in send order, as §3.6 does.
        std::vector<core::IpidObservation> observations;
        for (const auto& row : record.probes.probes) {
            for (const auto& exchange : row) {
                if (!exchange.responded()) continue;
                auto parsed = net::parse_packet(*exchange.response);
                if (!parsed) continue;
                observations.push_back({exchange.send_index, parsed.value().ip.identification});
            }
        }
        std::sort(observations.begin(), observations.end(),
                  [](const auto& a, const auto& b) { return a.send_index < b.send_index; });
        std::vector<std::uint16_t> merged;
        merged.reserve(observations.size());
        for (const auto& obs : observations) merged.push_back(obs.ipid);
        if (auto step = core::max_ipid_step(merged)) ecdf.add(*step);
    }
    return ecdf;
}

}  // namespace

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto ripe = max_step_ecdf(world->ripe5_measurement());
    const auto itdk = max_step_ecdf(world->itdk_measurement());

    util::print_ecdf_set(std::cout,
                         "Figure 2 — Max IPID step per fully-responsive IP (threshold = 1300)",
                         {{"ITDK", &itdk}, {"RIPE", &ripe}}, 24, "max step");

    const core::IpidClassifierConfig config;
    std::cout << "\nFraction of IPs with max step <= " << config.threshold
              << " (sequential side of the knee):\n"
              << "  RIPE-5: " << util::format_percent(ripe.at(config.threshold))
              << "   ITDK: " << util::format_percent(itdk.at(config.threshold)) << "\n"
              << "Paper shape: a sharp knee well below 1300, then a long random tail\n"
                 "spread across the 16-bit space.\n";
    return 0;
}
