// Table 3 — Measurement overview: responsive IPs, SNMPv3 responders,
// SNMPv3 ∩ LFP, LFP-only responders, and unique/non-unique signature counts
// per dataset plus the union.
#include <unordered_map>

#include "bench_common.hpp"
#include "core/pipeline.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    util::TablePrinter table("Table 3 — Measurement overview (scaled world)");
    table.header({"Measurement", "IPs", "SNMPv3", "SNMPv3 ∩ LFP", "LFP \\ SNMPv3",
                  "Unique sigs", "Non-unique sigs"});

    // Per-dataset signature databases (the paper's per-row counts), then the
    // union row from the world's shared database.
    for (const auto& measurement : world->measurements()) {
        const auto db = core::LfpPipeline::build_database(
            {&measurement, 1}, {.min_occurrences = world->config().signature_min_occurrences});
        const auto counts = db.full_signature_counts();
        table.row({measurement.name, util::format_count(measurement.responsive_count()),
                   util::format_count(measurement.snmp_count()),
                   util::format_count(measurement.snmp_and_lfp_count()),
                   util::format_count(measurement.lfp_only_count()),
                   util::format_count(counts.unique), util::format_count(counts.non_unique)});
    }

    // Union row: distinct IPs across the six measurements (an IP counts as
    // responsive/labeled if any measurement saw it so).
    struct UnionState {
        bool responsive = false;
        bool snmp = false;
        bool lfp = false;
    };
    std::unordered_map<net::IPv4Address, UnionState> by_ip;
    for (const auto& measurement : world->measurements()) {
        for (const auto& record : measurement.records) {
            UnionState& state = by_ip[record.probes.target];
            state.responsive = state.responsive || record.responsive();
            state.snmp = state.snmp || record.snmp_vendor.has_value();
            state.lfp = state.lfp || record.features.complete();
        }
    }
    std::size_t union_responsive = 0;
    std::size_t union_snmp = 0;
    std::size_t union_both = 0;
    std::size_t union_lfp_only = 0;
    for (const auto& [ip, state] : by_ip) {
        if (state.responsive) ++union_responsive;
        if (state.snmp) ++union_snmp;
        if (state.snmp && state.lfp) ++union_both;
        if (!state.snmp && state.lfp) ++union_lfp_only;
    }
    const auto union_counts = world->database().full_signature_counts();
    table.row({"Union", util::format_count(union_responsive), util::format_count(union_snmp),
               util::format_count(union_both), util::format_count(union_lfp_only),
               util::format_count(union_counts.unique),
               util::format_count(union_counts.non_unique)});
    table.print(std::cout);

    std::cout << "\nPaper shape: ≈90 unique and ≈23 non-unique union signatures at full\n"
                 "scale; each RIPE snapshot contributes 46-62 unique signatures; SNMPv3\n"
                 "covers ≈28% of responsive IPs and LFP-only adds 58k-77k IPs per snapshot.\n";
    return 0;
}
