// Figure 18 — Packets sent and received per IP by Nmap-style OS detection
// on the banner sample, versus LFP's constant 10.
#include "baselines/nmap_like.hpp"
#include "bench_common.hpp"
#include "probe/sim_transport.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();
    probe::SimTransport transport(world->internet());
    baselines::NmapLikeScanner scanner;

    util::Ecdf sent;
    util::Ecdf received;
    const stack::Vendor vendors[] = {stack::Vendor::cisco,    stack::Vendor::juniper,
                                     stack::Vendor::huawei,   stack::Vendor::ericsson,
                                     stack::Vendor::mikrotik, stack::Vendor::nokia};
    for (stack::Vendor vendor : vendors) {
        for (std::size_t index : bench::banner_sample(*world, vendor, 120, 0xF16)) {
            auto result =
                scanner.scan(transport, world->topology().router(index).interfaces()[0]);
            sent.add(static_cast<double>(result.packets_sent));
            received.add(static_cast<double>(result.packets_received));
        }
    }

    util::print_ecdf_set(std::cout, "Figure 18 — Nmap packets per IP",
                         {{"Sent", &sent}, {"Received", &received}}, 16, "packets");
    std::cout << "\n  mean sent " << util::format_double(sent.mean(), 0) << ", mean received "
              << util::format_double(received.mean(), 0) << ", >1000 sent for "
              << util::format_percent(1.0 - sent.at(1000.0)) << " of IPs\n"
              << "  (paper: mean 1,538 sent / 1,065 received; >1000 packets for >80% of\n"
                 "   IPs; LFP sends a constant 10 per target — two orders less)\n";
    return 0;
}
