// Wire-engine throughput: packets-per-second at the wire, measured over
// real loopback sockets, serial (one sendto/recv per packet) vs batched
// (sendmmsg/recvmmsg with UDP GSO/GRO coalescing) through the same
// DgramWireBackend the wire tests exercise.
//
// "At the wire" means packets that actually traversed the kernel: the pump
// counts what the receive side hands back, not what the send side claims.
// Probe-sized (84-byte) datagrams, one single-threaded pump per mode —
// send a chunk, drain the socket, recycle the buffers — so the number is
// the per-core syscall-path cost, not a scheduling artifact.
//
// Results append to BENCH_wire.json (env LFP_BENCH_JSON overrides) as a
// perf trajectory, one JSON object per run, smoke runs marked.
// Gate (binding, smoke included — the ratio is load-independent):
//   batched pps >= 3x serial pps. This is the tentpole claim: batching
//   the syscall boundary must buy at least 3x at the wire.
//
// Env knobs: LFP_BENCH_SMOKE=1 shrinks packet counts for CI;
// LFP_WIRE_BATCH overrides the flush depth (default 64).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "probe/wire.hpp"
#include "util/arena.hpp"
#include "util/table.hpp"

namespace {

using namespace std::chrono_literals;
using lfp::probe::DgramWireBackend;
using lfp::probe::WireConfig;
using lfp::probe::WireMode;

std::size_t env_or(const char* name, std::size_t fallback) {
    const char* value = std::getenv(name);
    return value ? static_cast<std::size_t>(std::strtoull(value, nullptr, 10)) : fallback;
}

constexpr std::size_t kPacketBytes = 84;  // ICMP echo probe size

struct PumpResult {
    double seconds = 0.0;
    double pps = 0.0;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    lfp::probe::WireBackend::Counters send_counters;
    lfp::probe::WireBackend::Counters recv_counters;
    bool gso = false;
    bool gro = false;
};

/// Single-threaded pump: send a chunk, drain the receive socket, recycle
/// buffers, repeat. pps is computed over *received* packets.
PumpResult pump(WireMode mode, std::size_t total_packets, std::size_t chunk) {
    WireConfig config;
    config.mode = mode;
    config.batch = env_or("LFP_WIRE_BATCH", 64);
    config.source = "127.0.0.1";
    DgramWireBackend receiver(config);
    DgramWireBackend sender(config);
    if (!receiver.ready() || !sender.ready()) {
        std::cerr << "loopback sockets unavailable: " << receiver.status() << " / "
                  << sender.status() << "\n";
        return {};
    }
    if (!sender.set_peer(receiver.local_address(), receiver.local_port())) {
        std::cerr << "set_peer failed\n";
        return {};
    }

    std::vector<lfp::net::Bytes> packets(chunk, lfp::net::Bytes(kPacketBytes, 0));
    for (std::size_t i = 0; i < packets.size(); ++i) {
        packets[i][0] = static_cast<std::uint8_t>(i);
    }
    lfp::util::BufferPool pool;
    pool.prime(chunk * 2, kPacketBytes);
    std::vector<lfp::net::Bytes> inbound;
    inbound.reserve(chunk * 2);

    PumpResult result;
    result.gso = sender.gso_available();
    result.gro = receiver.gro_available();
    const auto start = std::chrono::steady_clock::now();
    while (result.sent < total_packets) {
        sender.send(std::span<const lfp::net::Bytes>(packets.data(), packets.size()));
        result.sent += packets.size();
        inbound.clear();
        receiver.receive(0ms, pool, inbound);
        result.received += inbound.size();
        for (auto& packet : inbound) pool.release(std::move(packet));
    }
    // Tail drain: whatever is still queued in the socket buffer.
    for (int i = 0; i < 20; ++i) {
        inbound.clear();
        if (receiver.receive(10ms, pool, inbound) == 0) break;
        result.received += inbound.size();
        for (auto& packet : inbound) pool.release(std::move(packet));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    result.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
    result.pps = result.seconds > 0
                     ? static_cast<double>(result.received) / result.seconds
                     : 0.0;
    result.send_counters = sender.counters();
    result.recv_counters = receiver.counters();
    return result;
}

void append_run(const std::string& path, const std::string& entry) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string contents = buffer.str();
    in.close();

    const std::string closing = "]}\n";
    if (const auto at = contents.rfind(closing); at != std::string::npos) {
        contents.insert(at, "," + entry + "\n");
    } else {
        contents = "{\"benchmark\": \"bench_wire\", \"runs\": [\n" + entry + "\n" + closing;
    }
    std::ofstream out(path, std::ios::trunc);
    out << contents;
}

std::string format1(double value) { return lfp::util::format_double(value, 1); }

}  // namespace

int main() {
    using namespace lfp;

    const bool smoke = env_or("LFP_BENCH_SMOKE", 0) != 0;
    // The serial pump is ~20x slower per packet; give it fewer packets so
    // both legs take comparable wall-clock. pps does not depend on count.
    const std::size_t serial_packets = env_or("LFP_BENCH_PACKETS", smoke ? 40'000 : 200'000);
    const std::size_t batched_packets = serial_packets * 8;
    const std::string json_path = [] {
        const char* value = std::getenv("LFP_BENCH_JSON");
        return std::string(value != nullptr ? value : "BENCH_wire.json");
    }();

    std::cout << "Wire engine: loopback pps, serial vs batched, " << kPacketBytes
              << "-byte packets" << (smoke ? " [smoke]" : "") << "\n\n";

    const PumpResult serial = pump(WireMode::serial, serial_packets, 64);
    const PumpResult batched = pump(WireMode::batched, batched_packets, 64);
    if (serial.received == 0 || batched.received == 0) {
        std::cerr << "FAIL: a pump moved no packets\n";
        return 1;
    }

    const double speedup = serial.pps > 0 ? batched.pps / serial.pps : 0.0;
    const double serial_spp = serial.send_counters.send_syscalls > 0
                                  ? static_cast<double>(serial.sent) /
                                        static_cast<double>(serial.send_counters.send_syscalls)
                                  : 0.0;
    const double batched_spp =
        batched.send_counters.send_syscalls > 0
            ? static_cast<double>(batched.sent) /
                  static_cast<double>(batched.send_counters.send_syscalls)
            : 0.0;

    util::TablePrinter table("Wire engine results");
    table.header({"metric", "serial", "batched"});
    table.row({"packets sent", std::to_string(serial.sent), std::to_string(batched.sent)});
    table.row({"packets received", std::to_string(serial.received),
               std::to_string(batched.received)});
    table.row({"seconds", util::format_double(serial.seconds, 3),
               util::format_double(batched.seconds, 3)});
    table.row({"pps at the wire", format1(serial.pps), format1(batched.pps)});
    table.row({"packets per send syscall", format1(serial_spp), format1(batched_spp)});
    table.row({"gso segments", std::to_string(serial.send_counters.gso_segments),
               std::to_string(batched.send_counters.gso_segments)});
    table.row({"gro splits", std::to_string(serial.recv_counters.gro_splits),
               std::to_string(batched.recv_counters.gro_splits)});
    table.row({"send failures", std::to_string(serial.send_counters.send_failures),
               std::to_string(batched.send_counters.send_failures)});
    table.print(std::cout);
    std::cout << "GSO " << (batched.gso ? "available" : "unavailable") << ", GRO "
              << (batched.gro ? "available" : "unavailable") << "\n";

    bool ok = true;
    std::cout << "\nSpeedup gate: " << format1(speedup)
              << "x batched over serial vs floor 3.0x: "
              << (speedup >= 3.0 ? "PASS" : "FAIL") << "\n";
    if (speedup < 3.0) ok = false;

    // Delivery sanity: loopback under this pump must not be lossy enough to
    // distort pps (socket buffers hold a full chunk comfortably).
    const double batched_delivery = static_cast<double>(batched.received) /
                                    static_cast<double>(batched.sent);
    if (batched_delivery < 0.5) {
        std::cout << "FAIL: batched pump delivered only "
                  << format1(batched_delivery * 100.0) << "% of packets\n";
        ok = false;
    }

    std::ostringstream entry;
    entry << "{\"packet_bytes\": " << kPacketBytes
          << ", \"serial_pps\": " << format1(serial.pps)
          << ", \"batched_pps\": " << format1(batched.pps)
          << ", \"speedup\": " << format1(speedup)
          << ", \"serial_packets_per_syscall\": " << format1(serial_spp)
          << ", \"batched_packets_per_syscall\": " << format1(batched_spp)
          << ", \"gso\": " << (batched.gso ? "true" : "false")
          << ", \"gro\": " << (batched.gro ? "true" : "false")
          << ", \"smoke\": " << (smoke ? "true" : "false") << "}";
    append_run(json_path, entry.str());
    std::cout << "Trajectory appended to " << json_path << "\n";

    return ok ? 0 : 1;
}
