// Internet-scale census memory engine: 10M simulated targets through the
// spill-to-disk multi-pass census, measuring sustained targets/sec, peak
// RSS (VmHWM), resident bytes per target, and heap allocations per target.
//
// The world is sim::ScaleTransport — stateless, hash-derived personas — so
// the memory the bench observes belongs to the census engine, not the
// simulation. The census runs the real pipeline end to end: compact spill
// records on disk, a RAM response-mask index, retry passes merging
// strictly-improving re-probes in place, and a final in-order drain into a
// streaming tally sink. Nothing ever holds the whole Measurement.
//
// Results append to BENCH_scale.json (env LFP_BENCH_JSON overrides the
// path) as a perf trajectory: one JSON object per run, smoke runs marked.
// Gates:
//   - bytes/target: peak RSS divided by target count must stay under the
//     ceiling — the previous full run's recorded ceiling (a ratchet), or
//     LFP_MEM_CEILING_MB * 1e6 / targets when that env override is set.
//     Always binding, smoke included (memory is load-independent).
//   - targets/sec: a full run must reach >= 0.8x the previous full run's
//     rate. Wall-clock-sensitive, so smoke runs report but waive it.
//
// Env knobs: LFP_BENCH_SMOKE=1 shrinks to 1M targets for CI PRs;
// LFP_BENCH_TARGETS overrides the count outright; LFP_SPILL_DIR places the
// spill segments (default: the system temp dir); LFP_MEM_CEILING_MB caps
// peak RSS absolutely.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "sim/scale_world.hpp"
#include "util/alloc_trace.hpp"
#include "util/table.hpp"

// ---- global allocation counter ------------------------------------------
// Counts every operator-new in the process (all threads), so the census
// loop's steady-state allocation rate is directly observable. Counting
// only — allocation behaviour is otherwise unchanged. Each count is also
// bucketed by the allocating thread's pipeline stage tag
// (util/alloc_trace.hpp), attributing the total to lane scheduling,
// receive, the simulated responder, record assembly, or the sink.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

constexpr const char* kStageNames[] = {"lane", "admit", "dispatch", "recv", "sim", "assemble", "sink"};
constexpr std::size_t kStageCount = sizeof(kStageNames) / sizeof(kStageNames[0]);
/// One bucket per known stage plus a trailing "untagged" bucket.
std::atomic<std::uint64_t> g_stage_allocs[kStageCount + 1]{};

std::size_t stage_index(const char* tag) noexcept {
    if (tag != nullptr) {
        for (std::size_t i = 0; i < kStageCount; ++i) {
            if (std::strcmp(tag, kStageNames[i]) == 0) return i;
        }
    }
    return kStageCount;
}
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_stage_allocs[stage_index(lfp::util::t_alloc_stage)].fetch_add(
        1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
    const char* value = std::getenv(name);
    return value ? static_cast<std::size_t>(std::strtoull(value, nullptr, 10)) : fallback;
}

double env_or_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    return value ? std::strtod(value, nullptr) : fallback;
}

/// Peak resident set size in bytes (VmHWM), or 0 where unavailable.
std::size_t peak_rss_bytes() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            return static_cast<std::size_t>(
                       std::strtoull(line.c_str() + 6, nullptr, 10)) *
                   1024;
        }
    }
    return 0;
}

/// Streaming consumer: tallies the draining records, holds none of them.
class TallySink final : public lfp::core::RecordSink {
  public:
    void accept(std::uint64_t global_index, lfp::core::TargetRecord&& record) override {
        ordered_ = ordered_ && global_index == next_expected_++;
        counts_.add(record);
        if (record.probes.all_protocols_responsive()) ++full_signatures_;
        max_pass_ = std::max(max_pass_, record.pass);
    }

    [[nodiscard]] const lfp::core::MeasurementCounts& counts() const noexcept {
        return counts_;
    }
    [[nodiscard]] std::uint64_t size() const noexcept { return next_expected_; }
    [[nodiscard]] bool ordered() const noexcept { return ordered_; }
    [[nodiscard]] std::uint64_t full_signatures() const noexcept { return full_signatures_; }
    [[nodiscard]] std::uint16_t max_pass() const noexcept { return max_pass_; }

  private:
    lfp::core::MeasurementCounts counts_;
    std::uint64_t next_expected_ = 0;
    std::uint64_t full_signatures_ = 0;
    std::uint16_t max_pass_ = 0;
    bool ordered_ = true;
};

/// The trajectory file's most recent full (non-smoke) run, parsed
/// line-orientedly — each run is one JSON object on its own line.
struct PreviousRun {
    bool found = false;
    double targets_per_sec = 0.0;
    double bytes_per_target_ceiling = 0.0;
    double allocs_per_target_ceiling = 0.0;
};

double field_after(const std::string& line, const char* key) {
    const auto at = line.find(key);
    if (at == std::string::npos) return 0.0;
    return std::strtod(line.c_str() + at + std::strlen(key), nullptr);
}

PreviousRun last_full_run(const std::string& path) {
    PreviousRun previous;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"smoke\": false") == std::string::npos) continue;
        previous.found = true;
        previous.targets_per_sec = field_after(line, "\"targets_per_sec\": ");
        previous.bytes_per_target_ceiling =
            field_after(line, "\"bytes_per_target_ceiling\": ");
        previous.allocs_per_target_ceiling =
            field_after(line, "\"allocs_per_target_ceiling\": ");
    }
    return previous;
}

void append_run(const std::string& path, const std::string& entry) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string contents = buffer.str();
    in.close();

    const std::string closing = "]}\n";
    if (const auto at = contents.rfind(closing); at != std::string::npos) {
        contents.insert(at, "," + entry + "\n");
    } else {
        contents = "{\"benchmark\": \"bench_scale\", \"runs\": [\n" + entry + "\n" + closing;
    }
    std::ofstream out(path, std::ios::trunc);
    out << contents;
}

}  // namespace

int main() {
    using namespace lfp;
    using Clock = std::chrono::steady_clock;

    const bool smoke = env_or("LFP_BENCH_SMOKE", 0) != 0;
    const std::size_t target_count =
        env_or("LFP_BENCH_TARGETS", smoke ? 1'000'000 : 10'000'000);
    const std::string json_path = [] {
        const char* value = std::getenv("LFP_BENCH_JSON");
        return std::string(value != nullptr ? value : "BENCH_scale.json");
    }();

    std::cout << "Scale census: " << target_count << " targets, 2 passes, spill to disk"
              << (smoke ? " [smoke]" : "") << "\n\n";

    sim::ScaleTransport transport(
        {.seed = 7, .responsive_fraction = 0.65, .loss_rate = 0.02});

    std::vector<net::IPv4Address> targets;
    targets.reserve(target_count);
    for (std::size_t i = 0; i < target_count; ++i) {
        targets.push_back(net::IPv4Address(static_cast<std::uint32_t>(0x0B000000 + i)));
    }

    core::CensusPlan plan;
    plan.name = "scale";
    plan.vantages = {&transport};
    plan.campaign.window = 256;
    plan.campaign.keep_request_bytes = false;
    plan.campaign.response_timeout = std::chrono::milliseconds(250);
    plan.passes = 2;
    plan.spill = true;
    plan.spill_config.segment_records = 1 << 16;
    core::CensusRunner runner(std::move(plan));

    TallySink tally;
    const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    std::uint64_t stage_before[kStageCount + 1];
    for (std::size_t i = 0; i <= kStageCount; ++i) {
        stage_before[i] = g_stage_allocs[i].load(std::memory_order_relaxed);
    }
    const auto start = Clock::now();
    runner.stream_passes(targets, {}, 2, tally);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
    const std::uint64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);

    const double seconds = static_cast<double>(elapsed.count()) / 1e6;
    const double rate =
        seconds > 0 ? static_cast<double>(target_count) / seconds : 0.0;
    const std::size_t peak_rss = peak_rss_bytes();
    const double bytes_per_target =
        static_cast<double>(peak_rss) / static_cast<double>(target_count);
    const double allocs_per_target = static_cast<double>(allocs_after - allocs_before) /
                                     static_cast<double>(target_count);
    const auto stats = runner.last_pass_stats();

    util::TablePrinter table("Scale census results");
    table.header({"metric", "value"});
    table.row({"targets", std::to_string(target_count)});
    table.row({"seconds", util::format_double(seconds, 2)});
    table.row({"targets/sec", util::format_double(rate, 0)});
    table.row({"peak RSS (MB)", util::format_double(
                                    static_cast<double>(peak_rss) / 1e6, 1)});
    table.row({"bytes/target", util::format_double(bytes_per_target, 1)});
    table.row({"heap allocs/target", util::format_double(allocs_per_target, 2)});
    table.row({"responsive", std::to_string(tally.counts().responsive)});
    table.row({"snmp answered", std::to_string(tally.counts().snmp)});
    table.row({"full signatures", std::to_string(tally.full_signatures())});
    table.row({"pass-2 upgrades", stats.size() > 1 ? std::to_string(stats[1].upgraded) : "0"});
    table.row({"packets simulated", std::to_string(transport.packets_seen())});
    table.row({"packets lost", std::to_string(transport.packets_lost())});
    table.print(std::cout);

    // Per-stage attribution: where the allocations actually happen. The
    // "untagged" bucket is everything outside a tagged region (setup,
    // spill/drain I/O on the consumer thread before tagging, gtest-free
    // main() itself) — a big untagged share is a cue to tag more stages.
    const std::uint64_t total_allocs = allocs_after - allocs_before;
    util::TablePrinter stage_table("Heap allocations by pipeline stage");
    stage_table.header({"stage", "allocs/target", "share"});
    for (std::size_t i = 0; i <= kStageCount; ++i) {
        const std::uint64_t count =
            g_stage_allocs[i].load(std::memory_order_relaxed) - stage_before[i];
        const double share =
            total_allocs > 0 ? 100.0 * static_cast<double>(count) /
                                   static_cast<double>(total_allocs)
                             : 0.0;
        stage_table.row({i < kStageCount ? kStageNames[i] : "untagged",
                         util::format_double(static_cast<double>(count) /
                                                 static_cast<double>(target_count),
                                             2),
                         util::format_double(share, 1) + "%"});
    }
    stage_table.print(std::cout);

    bool ok = true;
    if (tally.size() != target_count || !tally.ordered()) {
        std::cout << "\nFAIL: sink saw " << tally.size() << " records (ordered="
                  << tally.ordered() << "), expected a gap-free " << target_count << "\n";
        ok = false;
    }
    if (stats.size() > 1 && stats[1].upgraded == 0) {
        std::cout << "\nFAIL: retry pass upgraded nothing — under 2% deterministic loss "
                     "a second pass must repair some targets\n";
        ok = false;
    }

    // --- gates against the trajectory -------------------------------------
    const PreviousRun previous = last_full_run(json_path);
    double ceiling = previous.found && previous.bytes_per_target_ceiling > 0
                         ? previous.bytes_per_target_ceiling
                         : 128.0;
    const double ceiling_mb = env_or_double("LFP_MEM_CEILING_MB", 0.0);
    if (ceiling_mb > 0) {
        ceiling = ceiling_mb * 1e6 / static_cast<double>(target_count);
    }

    std::cout << "\nMemory gate: " << util::format_double(bytes_per_target, 1)
              << " bytes/target vs ceiling " << util::format_double(ceiling, 1) << ": "
              << (bytes_per_target <= ceiling ? "PASS" : "FAIL") << "\n";
    if (bytes_per_target > ceiling) ok = false;

    // Allocation ratchet: allocs/target is deterministic enough to bind in
    // smoke too (the ratio is scale-stable; only thread-timing noise in
    // vector growth varies, which the recorded 1.1x headroom absorbs). A
    // full run that comes in under the ceiling re-records it at 1.1x the
    // measurement, locking improvements in.
    double alloc_ceiling = previous.found && previous.allocs_per_target_ceiling > 0
                               ? previous.allocs_per_target_ceiling
                               : 320.0;
    std::cout << "Allocation gate: " << util::format_double(allocs_per_target, 2)
              << " allocs/target vs ceiling " << util::format_double(alloc_ceiling, 2)
              << ": " << (allocs_per_target <= alloc_ceiling ? "PASS" : "FAIL") << "\n";
    if (allocs_per_target > alloc_ceiling) ok = false;
    const double recorded_alloc_ceiling =
        smoke ? alloc_ceiling : std::min(alloc_ceiling, 1.1 * allocs_per_target);

    if (previous.found && previous.targets_per_sec > 0) {
        const double floor = 0.8 * previous.targets_per_sec;
        const bool fast_enough = rate >= floor;
        std::cout << "Throughput gate: " << util::format_double(rate, 0)
                  << " targets/sec vs floor " << util::format_double(floor, 0)
                  << " (0.8x previous full run): "
                  << (fast_enough         ? "PASS"
                      : smoke             ? "waived (smoke)"
                                          : "FAIL")
                  << "\n";
        if (!fast_enough && !smoke) ok = false;
    } else {
        std::cout << "Throughput gate: NO BASELINE — " << json_path
                  << " has no previous full (non-smoke) run, so the 0.8x floor cannot bind. "
                     "This run PASSES by default and records the baseline the next full run "
                     "will be gated against.\n";
    }

    std::ostringstream entry;
    entry << "{\"targets\": " << target_count << ", \"passes\": 2, \"seconds\": "
          << util::format_double(seconds, 2) << ", \"targets_per_sec\": "
          << util::format_double(rate, 1) << ", \"peak_rss_bytes\": " << peak_rss
          << ", \"bytes_per_target\": " << util::format_double(bytes_per_target, 1)
          << ", \"bytes_per_target_ceiling\": " << util::format_double(ceiling, 1)
          << ", \"allocs_per_target\": " << util::format_double(allocs_per_target, 2)
          << ", \"allocs_per_target_ceiling\": "
          << util::format_double(recorded_alloc_ceiling, 2)
          << ", \"responsive\": " << tally.counts().responsive
          << ", \"full_signatures\": " << tally.full_signatures()
          << ", \"smoke\": " << (smoke ? "true" : "false") << "}";
    append_run(json_path, entry.str());
    std::cout << "Trajectory appended to " << json_path << "\n";

    return ok ? 0 : 1;
}
