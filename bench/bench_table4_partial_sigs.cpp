// Table 4 — Partial signatures per responsive-protocol combination:
// total / unique / non-unique counts for each subset of {ICMP, TCP, UDP}.
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    struct Combo {
        const char* label;
        std::uint8_t mask;  // bit0 ICMP, bit1 TCP, bit2 UDP
    };
    // Order mirrors the paper's Table 4.
    const Combo combos[] = {
        {"TCP & UDP", 0b110}, {"ICMP & UDP", 0b101}, {"ICMP & TCP", 0b011},
        {"UDP", 0b100},       {"ICMP", 0b001},       {"TCP", 0b010},
    };

    util::TablePrinter table("Table 4 — Partial signatures by protocol combination");
    table.header({"Protocols", "Total", "Unique", "Non-unique"});
    for (const auto& combo : combos) {
        const auto counts = world->database().partial_signature_counts(combo.mask);
        table.row({combo.label, util::format_count(counts.unique + counts.non_unique),
                   util::format_count(counts.unique), util::format_count(counts.non_unique)});
    }
    table.print(std::cout);

    // Coverage gain from partial signatures (paper: ≈ +15%).
    std::size_t full_only = 0;
    std::size_t with_partial = 0;
    std::size_t partial_probe_targets = 0;
    for (const auto& record : world->ripe5_measurement().records) {
        if (record.lfp.kind == core::MatchKind::unique_full) {
            ++full_only;
            ++with_partial;
        } else if (record.lfp.kind == core::MatchKind::unique_partial) {
            ++with_partial;
        }
        // Targets where some protocol answered only a subset of its rounds:
        // the raw population the partial-signature machinery exists for.
        if (record.probes.partially_responsive()) ++partial_probe_targets;
    }
    std::cout << "\nRIPE-5 targets with a partially responsive protocol:  "
              << partial_probe_targets << " of " << world->ripe5_measurement().records.size()
              << " (" << util::format_percent(
                     world->ripe5_measurement().records.empty()
                         ? 0.0
                         : static_cast<double>(partial_probe_targets) /
                               static_cast<double>(world->ripe5_measurement().records.size()))
              << ")\n";
    std::cout << "\nRIPE-5 IPs classified by full unique signatures:   " << full_only
              << "\nRIPE-5 IPs classified incl. partial unique sigs:   " << with_partial
              << "  (+"
              << util::format_percent(full_only == 0 ? 0.0
                                                     : static_cast<double>(with_partial -
                                                                           full_only) /
                                                           static_cast<double>(full_only))
              << ", paper: ≈ +15%)\n"
              << "\nPaper shape: two-protocol combinations stay mostly unique; single-\n"
                 "protocol signatures are roughly half unique, half non-unique.\n";
    return 0;
}
