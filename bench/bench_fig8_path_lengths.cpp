// Figure 8 — Path length (hop count) distribution in the RIPE-5 traceroute
// dataset: ≥3 hops for ~95% of paths, ≤15 hops for ~95%.
#include "analysis/path_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    util::Ecdf hops;
    for (const auto& trace : world->ripe5().traces) {
        hops.add(static_cast<double>(trace.hops.size()));
    }

    util::print_ecdf(std::cout, "Figure 8 — Path length distribution (RIPE-5)", hops, 20,
                     "hops");
    std::cout << "\n  traces: " << util::format_count(hops.size())
              << "  median: " << util::format_double(hops.quantile(0.5), 0)
              << "  >=3 hops: " << util::format_percent(1.0 - hops.at(2.0))
              << "  <=15 hops: " << util::format_percent(hops.at(15.0)) << "\n"
              << "Paper: ~95% of paths have >=3 hops and ~95% have <=15 hops.\n";
    return 0;
}
