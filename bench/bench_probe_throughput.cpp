// Probe-engine throughput: serial (window=1) vs windowed campaigns over the
// simulated Internet with a modeled per-probe RTT. The paper's census probed
// ~2.2M interfaces; at one blocking round trip per packet that is weeks of
// wall clock, which is why the engine decouples sends from receives. This
// bench measures targets/sec at several (fixed) window sizes and verifies
// the windowed runs return byte-identical Measurement records to the serial
// one.
//
// A second scenario scales *vantages*: a CensusRunner partitions the same
// target list across N vantage transports (each a lane with its own
// sender/receiver thread pair and in-flight window) and index-merges the
// records. Lanes multiply the total in-flight budget, so targets/sec scales
// with the lane count while the merged Measurement stays byte-identical to
// the single-vantage run.
//
// A third scenario models the regime the adaptive window exists for: a
// lossy path whose ICMP budget is rate-limited (sim::Internet token bucket
// + source-quench advisories) under live timeout semantics. A fixed
// full-ceiling window blasts past the budget and loses ICMP/UDP answers
// wholesale; the AIMD window learns the path's knee and keeps them. The
// metric that matters there is *successfully measured targets* — full
// signatures, the population LFP extracts complete signatures from; a
// census must re-probe everything else. The acceptance gate is adaptive
// >= 1.5x fixed on full-signature yield from the identical hitlist (a
// deterministic-leaning count; the per-second rates are printed alongside
// and track it, but breathe with wall-clock scheduling noise).
//
// A fourth scenario gates the multi-pass retry scheduler: on a path with
// deterministic per-packet-hash loss, 2 census passes at the same
// packets-per-second cap must complete strictly more full signatures than
// 1 pass — the retry pass re-probes exactly the incomplete targets under
// shifted ID bases, drawing fresh loss fates. A paced windowed run is also
// checked byte-identical to the unpaced serial baseline (the token bucket
// shapes timing, never results).
//
// Env overrides: LFP_BENCH_TARGETS, LFP_BENCH_RTT_US, LFP_BENCH_JITTER.
// LFP_BENCH_SMOKE=1 shrinks every scenario for CI PR runs: identity checks
// and the (deterministic) multi-pass yield gate stay enforced, the
// timing-sensitive speed gates are reported but waived.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/census.hpp"
#include "probe/campaign.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "util/table.hpp"

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
    const char* value = std::getenv(name);
    return value ? static_cast<std::size_t>(std::strtoull(value, nullptr, 10)) : fallback;
}

double env_or_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    return value ? std::strtod(value, nullptr) : fallback;
}

}  // namespace

int main() {
    using namespace lfp;
    using Clock = std::chrono::steady_clock;

    const bool smoke = env_or("LFP_BENCH_SMOKE", 0) != 0;
    const std::size_t target_count = env_or("LFP_BENCH_TARGETS", smoke ? 120 : 300);
    const auto rtt = std::chrono::microseconds(env_or("LFP_BENCH_RTT_US", 2000));
    const double jitter = env_or_double("LFP_BENCH_JITTER", 0.3);
    if (smoke) {
        std::cout << "[smoke mode: reduced sizes, speed gates reported but waived]\n\n";
    }

    const sim::TopologyConfig topo_config{
        .seed = 42, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.18, .scale = 1.0};

    // Each run gets a freshly built world from the same seeds, so the
    // simulated routers' counter state is identical and result equality is
    // meaningful across window sizes.
    auto run_campaign = [&](std::size_t window, double pps = 0.0) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.004});
        probe::SimTransport transport(internet,
                                      probe::SimTransport::Options{.rtt = rtt, .jitter = jitter});
        // Fixed-window mode: this scenario measures raw window scaling, so
        // the adaptive controller stays off (loss here is rate-independent).
        probe::Campaign campaign(transport,
                                 {.window = window,
                                  .adaptive_window = false,
                                  .packets_per_second = pps,
                                  .response_timeout = std::chrono::milliseconds(250)});

        std::vector<net::IPv4Address> targets;
        for (std::size_t i = 0; i < topology.router_count() && targets.size() < target_count;
             ++i) {
            targets.push_back(topology.router(i).interfaces().front());
        }

        const auto start = Clock::now();
        auto results = campaign.run(targets);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
        const double seconds = static_cast<double>(elapsed.count()) / 1e6;
        const double rate =
            seconds > 0 ? static_cast<double>(results.size()) / seconds : 0.0;
        return std::pair<std::vector<probe::TargetProbeResult>, double>(std::move(results),
                                                                        rate);
    };

    std::cout << "Probe engine throughput: " << target_count << " targets, 10 packets each, "
              << "RTT " << rtt.count() << "us (jitter +/-" << jitter * 100 << "%)\n\n";

    auto [serial_results, serial_rate] = run_campaign(1);

    util::TablePrinter table("Targets/sec by in-flight window (simulated Internet)");
    table.header({"window", "targets/sec", "speedup", "records identical"});
    table.row({"1 (serial)", util::format_double(serial_rate, 1), "1.0x", "baseline"});

    bool all_identical = true;
    double speedup_at_32 = 0.0;
    for (std::size_t window : {8, 32, 128}) {
        auto [results, rate] = run_campaign(window);
        const bool identical = results == serial_results;
        all_identical = all_identical && identical;
        const double speedup = serial_rate > 0 ? rate / serial_rate : 0.0;
        if (window == 32) speedup_at_32 = speedup;
        table.row({std::to_string(window), util::format_double(rate, 1),
                   util::format_double(speedup, 1) + "x", identical ? "yes" : "NO"});
    }
    // Pacing byte-neutrality: a token-bucket cap delays admissions but must
    // never change what a run measures. A generous cap keeps the timed cost
    // negligible while still exercising the paced admission path.
    auto [paced_results, paced_rate] = run_campaign(32, 200'000.0);
    const bool paced_identical = paced_results == serial_results;
    all_identical = all_identical && paced_identical;
    table.row({"32 @ 200k pps", util::format_double(paced_rate, 1),
               util::format_double(serial_rate > 0 ? paced_rate / serial_rate : 0.0, 1) + "x",
               paced_identical ? "yes" : "NO"});
    table.print(std::cout);

    std::cout << "\nAcceptance: window>=32 must be >=5x serial with identical records: "
              << (speedup_at_32 >= 5.0 && all_identical ? "PASS" : "FAIL") << "\n"
              << "(A serial census of the paper's 2.2M interfaces at this RTT would take\n"
              << " ~" << util::format_double(2.2e6 / std::max(serial_rate, 1.0) / 3600.0, 1)
              << " hours; the windowed engine divides that by the window.)\n";

    // --- Multi-vantage scaling: lanes multiply the in-flight budget --------
    const std::size_t census_targets =
        std::max<std::size_t>(target_count * 4, smoke ? 400 : 1000);
    auto run_census = [&](std::size_t vantage_count) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(
                internet, probe::SimTransport::Options{.rtt = rtt, .jitter = jitter}));
        }

        core::CensusPlan plan;
        plan.name = "throughput";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = 32;
        plan.campaign.response_timeout = std::chrono::milliseconds(250);
        for (std::size_t i = 0;
             i < topology.router_count() && plan.targets.size() < census_targets; ++i) {
            // One interface per router: targets are independent, so the
            // default round-robin lane assignment is safe.
            plan.targets.push_back(topology.router(i).interfaces().front());
        }
        core::CensusRunner runner(std::move(plan));

        const auto start = Clock::now();
        auto measurement = runner.run();
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
        const double seconds = static_cast<double>(elapsed.count()) / 1e6;
        const double rate =
            seconds > 0 ? static_cast<double>(measurement.records.size()) / seconds : 0.0;
        return std::pair<lfp::core::Measurement, double>(std::move(measurement), rate);
    };

    std::cout << "\nMulti-vantage census: " << census_targets
              << " targets, window 32 per lane\n\n";
    auto [one_vantage, one_vantage_rate] = run_census(1);

    util::TablePrinter census_table("Targets/sec by vantage count (CensusRunner, window 32)");
    census_table.header({"vantages", "targets/sec", "speedup", "records identical"});
    census_table.row({"1", util::format_double(one_vantage_rate, 1), "1.0x", "baseline"});

    bool census_identical = true;
    double speedup_at_4 = 0.0;
    for (std::size_t vantage_count : {2, 4, 8}) {
        auto [measurement, rate] = run_census(vantage_count);
        const bool identical = measurement == one_vantage;
        census_identical = census_identical && identical;
        const double speedup = one_vantage_rate > 0 ? rate / one_vantage_rate : 0.0;
        if (vantage_count == 4) speedup_at_4 = speedup;
        census_table.row({std::to_string(vantage_count), util::format_double(rate, 1),
                          util::format_double(speedup, 1) + "x", identical ? "yes" : "NO"});
    }
    census_table.print(std::cout);

    std::cout << "\nAcceptance: 4 vantages must be >=2x one vantage at window 32 with\n"
              << "byte-identical merged records: "
              << (speedup_at_4 >= 2.0 && census_identical ? "PASS" : "FAIL") << "\n";

    // --- Lossy path with ICMP rate limiting: adaptive vs fixed window ------
    // The path sustains a bounded ICMP answer rate; past it, echo replies
    // and the ICMP errors UDP probes earn are replaced by source-quench
    // advisories. The transport runs with live-path semantics (drained()
    // never proves silence, like a real raw socket), so every target whose
    // answers were suppressed parks a window slot for the full response
    // timeout. A fixed full-ceiling window overruns the budget and stalls
    // on those timeouts wholesale; the AIMD window converges to the
    // sustainable rate and keeps both its answers and its pace.
    const std::size_t lossy_targets = smoke ? 200 : 800;

    // Hitlist: the full-signature re-probe population — targets known to
    // answer all nine probes when the path is quiet (exactly the
    // responsive population a census re-probes for complete signatures).
    // Selected in an instant quiet world (rtt 0, no loss, no limiter) so
    // the timed runs measure pacing, not target policy.
    const auto hitlist = [&] {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.0});
        probe::SimTransport transport(internet);
        probe::Campaign campaign(transport,
                                 {.send_snmp = false, .window = 64, .adaptive_window = false});
        std::vector<net::IPv4Address> candidates;
        for (std::size_t i = 0; i < topology.router_count(); ++i) {
            candidates.push_back(topology.router(i).interfaces().front());
        }
        auto probed = campaign.run(candidates);
        std::vector<net::IPv4Address> selected;
        for (std::size_t i = 0; i < probed.size() && selected.size() < lossy_targets; ++i) {
            if (probed[i].all_protocols_responsive()) selected.push_back(candidates[i]);
        }
        return selected;
    }();

    auto run_lossy = [&](bool adaptive) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4,
                                          .loss_rate = 0.001,
                                          .icmp_rate_limit_per_sec = 12000.0,
                                          .icmp_rate_limit_burst = 32.0});
        probe::SimTransport transport(
            internet, probe::SimTransport::Options{.rtt = rtt,
                                                   .jitter = jitter,
                                                   .live_semantics = true});
        // SNMP off: the discovery probe is filtered almost everywhere, and
        // under live semantics a guaranteed-unanswered slot would just park
        // every target on the timeout, drowning the signal this scenario
        // measures (the nine-probe LFP exchange is what the window paces).
        // The response timeout stays at the live-prober default (1 s):
        // parking a window slot for a second is the true price of a lost
        // answer, and it is exactly what blasting past the budget costs.
        probe::Campaign campaign(transport,
                                 {.send_snmp = false,
                                  .window = 128,
                                  .adaptive_window = adaptive});

        const auto& targets = hitlist;
        const auto start = Clock::now();
        auto results = campaign.run(targets);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
        const double seconds = static_cast<double>(elapsed.count()) / 1e6;

        std::size_t full = 0;
        for (const auto& result : results) {
            if (result.all_protocols_responsive()) ++full;
        }
        struct Outcome {
            double rate = 0;       ///< targets/sec
            double full_rate = 0;  ///< full signatures/sec
            std::size_t full = 0;
            std::uint64_t quenches = 0;
            std::size_t window = 0;
        } outcome;
        outcome.rate = seconds > 0 ? static_cast<double>(results.size()) / seconds : 0.0;
        outcome.full_rate = seconds > 0 ? static_cast<double>(full) / seconds : 0.0;
        outcome.full = full;
        outcome.quenches = campaign.rate_limit_signals();
        outcome.window = campaign.current_window();
        return outcome;
    };

    std::cout << "\nLossy path, ICMP rate-limited (12k ICMP answers/sec, burst 32), live\n"
              << "timeout semantics: " << hitlist.size()
              << " full-responsive targets, window ceiling 128\n\n";
    const auto fixed = run_lossy(false);
    const auto adaptive = run_lossy(true);

    util::TablePrinter lossy_table("Adaptive vs fixed window on the rate-limited path");
    lossy_table.header(
        {"mode", "targets/sec", "full sigs/sec", "full sigs", "quenches", "final window"});
    lossy_table.row({"fixed 128", util::format_double(fixed.rate, 1),
                     util::format_double(fixed.full_rate, 1), std::to_string(fixed.full),
                     std::to_string(fixed.quenches), std::to_string(fixed.window)});
    lossy_table.row({"adaptive <=128", util::format_double(adaptive.rate, 1),
                     util::format_double(adaptive.full_rate, 1), std::to_string(adaptive.full),
                     std::to_string(adaptive.quenches), std::to_string(adaptive.window)});
    lossy_table.print(std::cout);

    const double adaptive_gain =
        fixed.full > 0 ? static_cast<double>(adaptive.full) / static_cast<double>(fixed.full)
                       : 0.0;
    std::cout << "\nAcceptance: the adaptive window must collect >=1.5x the fixed window's\n"
              << "full signatures from the same hitlist on the rate-limited lossy path: "
              << util::format_double(adaptive_gain, 2) << "x "
              << (adaptive_gain >= 1.5 ? "PASS" : "FAIL") << "\n";

    // --- Multi-pass retry scheduling on a lossy path ----------------------
    // Per-packet-hash loss (no wall-clock limiter, so the counts below are
    // deterministic) under live timeout semantics and one shared
    // packets-per-second cap: a single pass leaves every loss-struck target
    // with a partial signature; a second pass re-probes exactly those
    // targets under shifted ID bases — fresh per-packet loss draws — and
    // converts most of them. The census-grade metric is full-signature
    // yield from the identical hitlist at the identical send budget.
    const double multipass_pps = 25'000.0;
    auto run_multipass = [&](std::size_t passes) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.02});
        probe::SimTransport transport(
            internet, probe::SimTransport::Options{.rtt = rtt,
                                                   .jitter = jitter,
                                                   .live_semantics = true});
        core::CensusPlan plan;
        plan.name = "multipass";
        plan.vantages = {&transport};
        plan.campaign.send_snmp = false;
        plan.campaign.window = 64;
        plan.campaign.packets_per_second = multipass_pps;
        plan.campaign.response_timeout = std::chrono::milliseconds(250);
        plan.passes = passes;
        // The hitlist is known-responsive, so even total silence means
        // every probe (or every answer) was lost — retry it too.
        plan.retry.retry_silent = true;
        core::CensusRunner runner(std::move(plan));

        const auto start = Clock::now();
        auto measurement = runner.measure_passes("multipass", hitlist, {}, passes);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
        const double seconds = static_cast<double>(elapsed.count()) / 1e6;

        std::size_t full = 0;
        for (const auto& record : measurement.records) {
            if (record.probes.all_protocols_responsive()) ++full;
        }
        struct Outcome {
            std::size_t full = 0;
            double seconds = 0;
            std::vector<core::CensusRunner::PassStats> stats;
        } outcome;
        outcome.full = full;
        outcome.seconds = seconds;
        outcome.stats = runner.last_pass_stats();
        return outcome;
    };

    std::cout << "\nMulti-pass retry, lossy path (2% per-packet loss, live timeouts, "
              << util::format_double(multipass_pps, 0) << " pps cap):\n"
              << hitlist.size() << " full-responsive targets\n\n";
    const auto one_pass = run_multipass(1);
    const auto two_pass = run_multipass(2);

    util::TablePrinter pass_table("Full-signature yield by census passes (equal pps cap)");
    pass_table.header({"passes", "full sigs", "yield", "probed/pass", "seconds"});
    auto probed_summary = [](const std::vector<core::CensusRunner::PassStats>& stats) {
        std::string parts;
        for (const auto& stat : stats) {
            if (!parts.empty()) parts += "+";
            parts += std::to_string(stat.probed);
        }
        return parts;
    };
    pass_table.row({"1", std::to_string(one_pass.full),
                    util::format_percent(static_cast<double>(one_pass.full) /
                                         static_cast<double>(hitlist.size())),
                    probed_summary(one_pass.stats),
                    util::format_double(one_pass.seconds, 2)});
    pass_table.row({"2", std::to_string(two_pass.full),
                    util::format_percent(static_cast<double>(two_pass.full) /
                                         static_cast<double>(hitlist.size())),
                    probed_summary(two_pass.stats),
                    util::format_double(two_pass.seconds, 2)});
    pass_table.print(std::cout);

    const bool multipass_pass = two_pass.full > one_pass.full;
    std::cout << "\nAcceptance: 2 passes must complete strictly more full signatures than 1\n"
              << "pass from the same hitlist at the same pps cap: "
              << two_pass.full << " vs " << one_pass.full << " "
              << (multipass_pass ? "PASS" : "FAIL")
              << "\n(per-packet-hash loss makes these counts deterministic, so this gate\n"
              << " binds in smoke mode too; pass 2 re-probed only the "
              << (two_pass.stats.empty() ? 0 : two_pass.stats.front().incomplete)
              << " incomplete targets.)\n";

    const bool identity_pass = all_identical && census_identical && multipass_pass;
    const bool yield_pass = adaptive_gain >= 1.5;
    const bool speed_pass = speedup_at_32 >= 5.0 && speedup_at_4 >= 2.0;
    if (smoke) {
        // CI PR smoke: only the byte-identity checks and the deterministic
        // multi-pass yield gate are truly load-independent and stay
        // binding. The adaptive yield gate leans on a
        // wall-clock token bucket (a heavily loaded runner slows the sim's
        // sends until even the blast fits the budget), so like the speedup
        // gates it is reported but waived; the full-size run gates all
        // three.
        std::cout << "\n[smoke] identity checks " << (identity_pass ? "PASS" : "FAIL")
                  << "; yield gate "
                  << (yield_pass ? "passes (informational)" : "waived (informational)")
                  << ", speedup gates "
                  << (speed_pass ? "pass (informational)" : "waived (informational)") << "\n";
        return identity_pass ? 0 : 1;
    }
    return identity_pass && yield_pass && speed_pass ? 0 : 1;
}
