// Probe-engine throughput: serial (window=1) vs windowed campaigns over the
// simulated Internet with a modeled per-probe RTT. The paper's census probed
// ~2.2M interfaces; at one blocking round trip per packet that is weeks of
// wall clock, which is why the engine decouples sends from receives. This
// bench measures targets/sec at several window sizes and verifies the
// windowed runs return byte-identical Measurement records to the serial one.
//
// A second scenario scales *vantages*: a CensusRunner partitions the same
// target list across N vantage transports (each a lane with its own thread
// and in-flight window) and index-merges the records. Lanes multiply the
// total in-flight budget, so targets/sec scales with the lane count while
// the merged Measurement stays byte-identical to the single-vantage run.
//
// Env overrides: LFP_BENCH_TARGETS, LFP_BENCH_RTT_US, LFP_BENCH_JITTER.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/census.hpp"
#include "probe/campaign.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "util/table.hpp"

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
    const char* value = std::getenv(name);
    return value ? static_cast<std::size_t>(std::strtoull(value, nullptr, 10)) : fallback;
}

double env_or_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    return value ? std::strtod(value, nullptr) : fallback;
}

}  // namespace

int main() {
    using namespace lfp;
    using Clock = std::chrono::steady_clock;

    const std::size_t target_count = env_or("LFP_BENCH_TARGETS", 300);
    const auto rtt = std::chrono::microseconds(env_or("LFP_BENCH_RTT_US", 2000));
    const double jitter = env_or_double("LFP_BENCH_JITTER", 0.3);

    const sim::TopologyConfig topo_config{
        .seed = 42, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.18, .scale = 1.0};

    // Each run gets a freshly built world from the same seeds, so the
    // simulated routers' counter state is identical and result equality is
    // meaningful across window sizes.
    auto run_campaign = [&](std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.004});
        probe::SimTransport transport(internet,
                                      probe::SimTransport::Options{.rtt = rtt, .jitter = jitter});
        probe::Campaign campaign(transport,
                                 {.window = window,
                                  .response_timeout = std::chrono::milliseconds(250)});

        std::vector<net::IPv4Address> targets;
        for (std::size_t i = 0; i < topology.router_count() && targets.size() < target_count;
             ++i) {
            targets.push_back(topology.router(i).interfaces().front());
        }

        const auto start = Clock::now();
        auto results = campaign.run(targets);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
        const double seconds = static_cast<double>(elapsed.count()) / 1e6;
        const double rate =
            seconds > 0 ? static_cast<double>(results.size()) / seconds : 0.0;
        return std::pair<std::vector<probe::TargetProbeResult>, double>(std::move(results),
                                                                        rate);
    };

    std::cout << "Probe engine throughput: " << target_count << " targets, 10 packets each, "
              << "RTT " << rtt.count() << "us (jitter +/-" << jitter * 100 << "%)\n\n";

    auto [serial_results, serial_rate] = run_campaign(1);

    util::TablePrinter table("Targets/sec by in-flight window (simulated Internet)");
    table.header({"window", "targets/sec", "speedup", "records identical"});
    table.row({"1 (serial)", util::format_double(serial_rate, 1), "1.0x", "baseline"});

    bool all_identical = true;
    double speedup_at_32 = 0.0;
    for (std::size_t window : {8, 32, 128}) {
        auto [results, rate] = run_campaign(window);
        const bool identical = results == serial_results;
        all_identical = all_identical && identical;
        const double speedup = serial_rate > 0 ? rate / serial_rate : 0.0;
        if (window == 32) speedup_at_32 = speedup;
        table.row({std::to_string(window), util::format_double(rate, 1),
                   util::format_double(speedup, 1) + "x", identical ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nAcceptance: window>=32 must be >=5x serial with identical records: "
              << (speedup_at_32 >= 5.0 && all_identical ? "PASS" : "FAIL") << "\n"
              << "(A serial census of the paper's 2.2M interfaces at this RTT would take\n"
              << " ~" << util::format_double(2.2e6 / std::max(serial_rate, 1.0) / 3600.0, 1)
              << " hours; the windowed engine divides that by the window.)\n";

    // --- Multi-vantage scaling: lanes multiply the in-flight budget --------
    const std::size_t census_targets = std::max<std::size_t>(target_count * 4, 1000);
    auto run_census = [&](std::size_t vantage_count) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(
                internet, probe::SimTransport::Options{.rtt = rtt, .jitter = jitter}));
        }

        core::CensusPlan plan;
        plan.name = "throughput";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = 32;
        plan.campaign.response_timeout = std::chrono::milliseconds(250);
        for (std::size_t i = 0;
             i < topology.router_count() && plan.targets.size() < census_targets; ++i) {
            // One interface per router: targets are independent, so the
            // default round-robin lane assignment is safe.
            plan.targets.push_back(topology.router(i).interfaces().front());
        }
        core::CensusRunner runner(std::move(plan));

        const auto start = Clock::now();
        auto measurement = runner.run();
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
        const double seconds = static_cast<double>(elapsed.count()) / 1e6;
        const double rate =
            seconds > 0 ? static_cast<double>(measurement.records.size()) / seconds : 0.0;
        return std::pair<lfp::core::Measurement, double>(std::move(measurement), rate);
    };

    std::cout << "\nMulti-vantage census: " << census_targets
              << " targets, window 32 per lane\n\n";
    auto [one_vantage, one_vantage_rate] = run_census(1);

    util::TablePrinter census_table("Targets/sec by vantage count (CensusRunner, window 32)");
    census_table.header({"vantages", "targets/sec", "speedup", "records identical"});
    census_table.row({"1", util::format_double(one_vantage_rate, 1), "1.0x", "baseline"});

    bool census_identical = true;
    double speedup_at_4 = 0.0;
    for (std::size_t vantage_count : {2, 4, 8}) {
        auto [measurement, rate] = run_census(vantage_count);
        const bool identical = measurement == one_vantage;
        census_identical = census_identical && identical;
        const double speedup = one_vantage_rate > 0 ? rate / one_vantage_rate : 0.0;
        if (vantage_count == 4) speedup_at_4 = speedup;
        census_table.row({std::to_string(vantage_count), util::format_double(rate, 1),
                          util::format_double(speedup, 1) + "x", identical ? "yes" : "NO"});
    }
    census_table.print(std::cout);

    std::cout << "\nAcceptance: 4 vantages must be >=2x one vantage at window 32 with\n"
              << "byte-identical merged records: "
              << (speedup_at_4 >= 2.0 && census_identical ? "PASS" : "FAIL") << "\n";

    const bool pass =
        speedup_at_32 >= 5.0 && all_identical && speedup_at_4 >= 2.0 && census_identical;
    return pass ? 0 : 1;
}
