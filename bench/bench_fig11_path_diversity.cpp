// Figure 11 — Router vendor diversity per path: number of distinct vendors
// identified on each path (all traces, intra-US, inter-US).
#include "analysis/path_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto vendors = analysis::VendorMap::from_measurement(
        world->ripe5_measurement(), analysis::VendorMap::Method::combined);
    analysis::PathAnalyzer analyzer(world->topology(), vendors);
    const auto& traces = world->ripe5().traces;

    const auto all_stats = analyzer.analyze(traces, analysis::PathScope::all, {});
    const auto intra = analyzer.analyze(traces, analysis::PathScope::intra_us, {});
    const auto inter = analyzer.analyze(traces, analysis::PathScope::inter_us, {});

    util::print_ecdf_set(std::cout, "Figure 11 — Vendors per path",
                         {{"All", &all_stats.vendors_per_path},
                          {"IntraUS", &intra.vendors_per_path},
                          {"InterUS", &inter.vendors_per_path}},
                         6, "vendors");

    auto exactly = [](const util::Ecdf& e, double k) { return e.at(k) - e.at(k - 1.0); };
    std::cout << "\nAll traces:   1 vendor " << util::format_percent(exactly(all_stats.vendors_per_path, 1))
              << ", 2 vendors " << util::format_percent(exactly(all_stats.vendors_per_path, 2))
              << ", 3 vendors " << util::format_percent(exactly(all_stats.vendors_per_path, 3))
              << "\nIntra-US:     1 vendor " << util::format_percent(exactly(intra.vendors_per_path, 1))
              << "\nInter-US:     1 vendor " << util::format_percent(exactly(inter.vendors_per_path, 1))
              << "\nDistinct vendor combinations observed: "
              << all_stats.combinations.items().size()
              << "\nPaper: ~50% single-vendor overall, ~40% two vendors, 7% three; intra-US\n"
                 "~70% single-vendor (more consolidated), inter-US ~60%.\n";
    return 0;
}
