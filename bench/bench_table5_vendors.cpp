// Table 5 — Ground-truth (SNMPv3-labeled) vendor distribution: labeled IP
// counts per vendor, with unique / non-unique signature counts and the IPs
// they cover.
#include <algorithm>
#include <map>

#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    struct VendorRow {
        std::size_t labeled_ips = 0;
        std::size_t unique_sigs = 0;
        std::size_t unique_ips = 0;
        std::size_t non_unique_sigs = 0;
        std::size_t non_unique_ips = 0;
    };
    std::map<stack::Vendor, VendorRow> rows;

    // Labeled IPs per vendor (fully-responsive labeled set, as in the paper).
    std::size_t total_labeled = 0;
    std::size_t total_unique_ips = 0;
    for (const auto& measurement : world->measurements()) {
        for (const auto& record : measurement.records) {
            if (!record.snmp_vendor || !record.features.complete()) continue;
            ++rows[*record.snmp_vendor].labeled_ips;
            ++total_labeled;
            const auto* stats = world->database().lookup(record.signature);
            if (stats == nullptr) continue;
            if (stats->unique()) {
                ++rows[*record.snmp_vendor].unique_ips;
                ++total_unique_ips;
            } else {
                ++rows[*record.snmp_vendor].non_unique_ips;
            }
        }
    }
    // Signature counts per dominant vendor.
    for (const auto& [signature, stats] : world->database().signatures()) {
        if (!signature.is_full()) continue;
        if (stats.unique()) {
            ++rows[stats.dominant_vendor()].unique_sigs;
        } else {
            for (const auto& [vendor, count] : stats.vendor_counts) {
                ++rows[vendor].non_unique_sigs;
            }
        }
    }

    util::TablePrinter table("Table 5 — Signatures per vendor in the ground-truth dataset");
    table.header({"Vendor", "Labeled", "Unique sigs (#IPs)", "Non-unique sigs (#IPs)"});
    // Rows ordered by labeled count.
    std::vector<std::pair<stack::Vendor, VendorRow>> ordered(rows.begin(), rows.end());
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
        return a.second.labeled_ips > b.second.labeled_ips;
    });
    for (const auto& [vendor, row] : ordered) {
        if (row.labeled_ips == 0) continue;
        table.row({std::string(stack::to_string(vendor)), util::format_count(row.labeled_ips),
                   std::to_string(row.unique_sigs) + " (" + util::format_count(row.unique_ips) +
                       ")",
                   std::to_string(row.non_unique_sigs) + " (" +
                       util::format_count(row.non_unique_ips) + ")"});
    }
    table.print(std::cout);

    std::cout << "\nLabeled IPs mapping to unique signatures: "
              << util::format_percent(static_cast<double>(total_unique_ips) /
                                      static_cast<double>(total_labeled))
              << " (paper: >82%)\n"
              << "Paper shape: Cisco ≈ half the labeled IPs (98% on unique sigs); Juniper\n"
                 "and Alcatel/Nokia 100% unique; MikroTik and H3C mostly non-unique\n"
                 "(UNIX-derived stacks shared across vendors).\n";
    return 0;
}
