// Microbenchmarks (google-benchmark): codec costs, feature extraction,
// signature matching, simulated-router response latency, and the full
// 10-packet LFP exchange — the per-inference costs behind the scalability
// claims (§7.3: 10 packets per target vs Nmap's ~1,538).
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "probe/campaign.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "snmp/snmpv3.hpp"
#include "stack/profile_catalog.hpp"

namespace {

using namespace lfp;

const net::IPv4Address kSrc = net::IPv4Address::from_octets(192, 0, 2, 1);
const net::IPv4Address kDst = net::IPv4Address::from_octets(5, 1, 2, 3);

void BM_Ipv4HeaderSerialize(benchmark::State& state) {
    net::Ipv4Header header;
    header.source = kSrc;
    header.destination = kDst;
    header.identification = 0x1234;
    for (auto _ : state) {
        net::Bytes out;
        out.reserve(net::Ipv4Header::kSize);
        net::ByteWriter writer(out);
        header.serialize(writer);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Ipv4HeaderSerialize);

void BM_IcmpEchoBuildParse(benchmark::State& state) {
    net::IpSendOptions ip;
    ip.source = kSrc;
    ip.destination = kDst;
    const net::Bytes payload(56, 0xA5);
    for (auto _ : state) {
        const net::Bytes packet = net::make_icmp_echo_request(ip, 7, 1, payload);
        auto parsed = net::parse_packet(packet);
        benchmark::DoNotOptimize(parsed);
    }
}
BENCHMARK(BM_IcmpEchoBuildParse);

void BM_TcpSegmentBuildParse(benchmark::State& state) {
    net::IpSendOptions ip;
    ip.source = kSrc;
    ip.destination = kDst;
    net::TcpSegment segment;
    segment.source_port = 43211;
    segment.destination_port = 33533;
    segment.flags.syn = true;
    segment.acknowledgment = 0xBEEF0001;
    segment.options.push_back({net::TcpOptionKind::mss, {0x05, 0xB4}});
    for (auto _ : state) {
        const net::Bytes packet = net::make_tcp_packet(ip, segment);
        auto parsed = net::parse_packet(packet);
        benchmark::DoNotOptimize(parsed);
    }
}
BENCHMARK(BM_TcpSegmentBuildParse);

void BM_SnmpDiscoveryRoundTrip(benchmark::State& state) {
    snmp::DiscoveryResponse response;
    response.message_id = 42;
    response.engine_id = snmp::make_mac_engine_id(snmp::enterprise::kCisco,
                                                  {1, 2, 3, 4, 5, 6});
    response.engine_boots = 3;
    response.engine_time = 1000;
    for (auto _ : state) {
        const net::Bytes wire = response.serialize();
        auto parsed = snmp::DiscoveryResponse::parse(wire);
        benchmark::DoNotOptimize(parsed);
    }
}
BENCHMARK(BM_SnmpDiscoveryRoundTrip);

void BM_RouterHandleProbe(benchmark::State& state) {
    util::Rng rng(1);
    const auto* profile = stack::standard_catalog().find("IOS 15");
    stack::StackProfile responsive = *profile;
    responsive.response = {1.0, 1.0, 1.0, 1.0, 0.0, 1.0};
    stack::SimulatedRouter router(1, responsive, rng);
    router.add_interface(kDst);
    net::IpSendOptions ip;
    ip.source = kSrc;
    ip.destination = kDst;
    const net::Bytes probe = net::make_icmp_echo_request(ip, 7, 1, net::Bytes(56, 0xA5));
    for (auto _ : state) {
        auto response = router.handle_packet(probe);
        benchmark::DoNotOptimize(response);
    }
}
BENCHMARK(BM_RouterHandleProbe);

struct WorldState {
    sim::Topology topology;
    sim::Internet internet;
    probe::SimTransport transport;
    std::vector<net::IPv4Address> targets;

    WorldState()
        : topology(sim::Topology::build({.seed = 7,
                                         .num_ases = 300,
                                         .tier1_count = 6,
                                         .transit_fraction = 0.2,
                                         .scale = 0.4})),
          internet(topology, {.seed = 7, .loss_rate = 0.0}),
          transport(internet) {
        for (std::size_t i = 0; i < topology.router_count(); ++i) {
            targets.push_back(topology.router(i).interfaces()[0]);
        }
    }

    static WorldState& instance() {
        static WorldState state;
        return state;
    }
};

void BM_LfpFullTargetExchange(benchmark::State& state) {
    auto& world = WorldState::instance();
    probe::Campaign campaign(world.transport);
    std::size_t i = 0;
    for (auto _ : state) {
        auto result = campaign.probe_target(world.targets[i++ % world.targets.size()]);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_LfpFullTargetExchange);

void BM_FeatureExtraction(benchmark::State& state) {
    auto& world = WorldState::instance();
    probe::Campaign campaign(world.transport);
    const auto result = campaign.probe_target(world.targets[0]);
    for (auto _ : state) {
        auto features = core::extract_features(result);
        benchmark::DoNotOptimize(features);
    }
}
BENCHMARK(BM_FeatureExtraction);

void BM_SignatureClassify(benchmark::State& state) {
    auto& world = WorldState::instance();
    probe::Campaign campaign(world.transport);
    core::LfpPipeline pipeline(world.transport);
    auto measurement = pipeline.measure(
        "micro", std::span(world.targets.data(), std::min<std::size_t>(world.targets.size(),
                                                                        3000)));
    auto db = core::LfpPipeline::build_database({&measurement, 1}, {.min_occurrences = 5});
    const core::LfpClassifier classifier(db);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& record = measurement.records[i++ % measurement.records.size()];
        auto verdict = classifier.classify(record.signature);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_SignatureClassify);

}  // namespace

BENCHMARK_MAIN();
