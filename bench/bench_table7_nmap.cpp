// Table 7 — LFP vs Nmap on a Censys-style banner-labeled sample: per-vendor
// coverage (fraction of sampled IPs the tool can work with) and accuracy
// (correct vendor verdicts among responsive IPs), plus mean packet costs.
#include "baselines/nmap_like.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "probe/sim_transport.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();
    probe::SimTransport transport(world->internet());

    const stack::Vendor vendors[] = {stack::Vendor::cisco,    stack::Vendor::juniper,
                                     stack::Vendor::huawei,   stack::Vendor::ericsson,
                                     stack::Vendor::mikrotik, stack::Vendor::nokia};

    util::TablePrinter table("Table 7 — Coverage and accuracy: LFP vs Nmap (banner sample)");
    table.header({"Vendor", "N", "LFP cov", "Nmap cov", "LFP acc", "Nmap acc"});

    std::uint64_t lfp_packets = 0;
    std::uint64_t nmap_packets = 0;
    std::size_t lfp_targets = 0;
    std::size_t nmap_targets = 0;

    for (stack::Vendor vendor : vendors) {
        const auto sample = bench::banner_sample(*world, vendor, 500, 0xBA11AD);
        core::LfpPipeline pipeline(transport);
        const core::LfpClassifier classifier(world->database());
        baselines::NmapLikeScanner scanner;

        std::size_t lfp_responsive = 0;
        std::size_t lfp_correct = 0;
        std::size_t nmap_responsive = 0;
        std::size_t nmap_correct = 0;

        for (std::size_t router_index : sample) {
            const net::IPv4Address target =
                world->topology().router(router_index).interfaces()[0];

            auto measurement = pipeline.measure("t7", {&target, 1});
            auto& record = measurement.records[0];
            if (record.lfp_responsive()) {
                ++lfp_responsive;
                record.lfp = classifier.classify(record.signature);
                if (record.lfp.vendor == vendor) ++lfp_correct;
            }

            auto nmap = scanner.scan(transport, target);
            nmap_packets += nmap.packets_sent;
            ++nmap_targets;
            // Nmap "coverage": OS detection could run (an open port answered).
            if (nmap.os_match.has_value() || nmap.vendor.has_value()) ++nmap_responsive;
            if (nmap.vendor == vendor) ++nmap_correct;
        }
        lfp_packets += pipeline.packets_sent();
        lfp_targets += sample.size();

        table.row({std::string(stack::to_string(vendor)), std::to_string(sample.size()),
                   util::format_percent(bench::percent(lfp_responsive, sample.size()) / 100.0, 0),
                   util::format_percent(bench::percent(nmap_responsive, sample.size()) / 100.0, 0),
                   util::format_percent(lfp_responsive == 0
                                            ? 0.0
                                            : static_cast<double>(lfp_correct) /
                                                  static_cast<double>(lfp_responsive),
                                        0),
                   util::format_percent(nmap_responsive == 0
                                            ? 0.0
                                            : static_cast<double>(nmap_correct) /
                                                  static_cast<double>(nmap_responsive),
                                        0)});
    }
    table.print(std::cout);

    std::cout << "\nMean packets per inference: LFP "
              << (lfp_targets == 0 ? 0 : lfp_packets / lfp_targets) << " vs Nmap "
              << (nmap_targets == 0 ? 0 : nmap_packets / nmap_targets)
              << " (paper: 10 vs ~1,538 — two orders of magnitude)\n"
              << "Paper shape: LFP coverage beats Nmap by 2-8x per vendor; accuracy is at\n"
                 "least as good, with Ericsson/Alcatel absent from Nmap's database and\n"
                 "MikroTik resolved only as generic Linux.\n";
    return 0;
}
