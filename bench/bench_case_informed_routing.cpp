// §6.3 case study — Informed routing: find vendor-homogeneous transit ASes
// (≥85% single vendor among identified routers), count destinations whose
// paths transit them, and test for alternative vendor-avoiding paths
// (the paper's AS9808/Huawei and AS3786/Juniper examples).
#include "analysis/as_analysis.hpp"
#include "analysis/informed_routing.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map =
        analysis::VendorMap::from_measurement(itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto coverage = analysis::per_as_coverage(
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map));

    // Paper: ASes with >=1k router IPs, >=85% one vendor; our scaled world
    // uses >=40 identified routers.
    auto homogeneous = analysis::find_homogeneous_ases(coverage, 40, 0.85);
    // Keep transit-capable ASes only (stubs cannot appear mid-path).
    std::erase_if(homogeneous, [&world](const analysis::HomogeneousAs& as) {
        return world->topology().graph().node(as.asn).customers.empty();
    });
    std::cout << "\nVendor-homogeneous transit ASes found: " << homogeneous.size() << "\n";
    if (homogeneous.size() > 6) homogeneous.resize(6);

    analysis::InformedRoutingAnalysis engine(world->topology(),
                                             {.sources_per_destination = 64, .seed = 1771});
    const auto studies = engine.evaluate_all(homogeneous);

    util::TablePrinter table("§6.3 — Informed routing around homogeneous transit ASes");
    table.header({"Transit AS", "Vendor", "share", "paths through", "affected dests",
                  "alt. path exists", "no alternative"});
    for (std::size_t i = 0; i < studies.size(); ++i) {
        table.row({"AS" + std::to_string(studies[i].transit_asn),
                   std::string(stack::to_string(studies[i].vendor)),
                   util::format_percent(homogeneous[i].share),
                   util::format_count(studies[i].paths_through),
                   util::format_count(studies[i].destinations),
                   util::format_count(studies[i].with_alternative),
                   util::format_count(studies[i].without_alternative)});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape (AS9808: 167 destinations with alternatives, 68 without;\n"
                 "AS3786: 53 destinations without visible alternatives): most affected\n"
                 "destinations can route around an untrusted vendor's transit network,\n"
                 "but a tail of customers has no visible alternative.\n";
    return 0;
}
