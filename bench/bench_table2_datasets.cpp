// Table 2 — Overview of router address datasets: unique IPv4 addresses and
// AS counts per RIPE-like snapshot and the ITDK-like collection, plus the
// pairwise snapshot overlap the paper quotes (~88%) and the RIPE/ITDK IP
// overlap (≤26%).
#include <unordered_set>

#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    util::TablePrinter table("Table 2 — Router address datasets (scaled world)");
    table.header({"Data Source", "Date", "# IPv4 addrs.", "# ASes"});

    std::unordered_set<net::IPv4Address> union_ips;
    std::unordered_set<std::uint32_t> union_ases;
    auto absorb = [&](const std::vector<net::IPv4Address>& ips) {
        for (net::IPv4Address ip : ips) {
            union_ips.insert(ip);
            const std::size_t index = world->topology().find_by_interface(ip);
            if (index != sim::Topology::npos) {
                union_ases.insert(world->topology().asn_of(index));
            }
        }
    };

    std::vector<std::vector<net::IPv4Address>> snapshot_ips;
    for (const auto& snapshot : world->ripe()) {
        auto ips = snapshot.router_ips();
        table.row({snapshot.name, snapshot.date, util::format_count(ips.size()),
                   util::format_count(snapshot.as_count(world->topology()))});
        absorb(ips);
        snapshot_ips.push_back(std::move(ips));
    }
    const auto itdk_ips = world->itdk().router_ips();
    table.row({world->itdk().name, world->itdk().date, util::format_count(itdk_ips.size()),
               util::format_count(world->itdk().as_count(world->topology()))});
    absorb(itdk_ips);
    table.row({"Union", "-", util::format_count(union_ips.size()),
               util::format_count(union_ases.size())});
    table.print(std::cout);

    // Pairwise consecutive-snapshot overlap (paper: ≈88%).
    std::cout << "\nConsecutive RIPE snapshot router-IP overlap (paper: ~88%):\n";
    for (std::size_t i = 1; i < snapshot_ips.size(); ++i) {
        const std::unordered_set<net::IPv4Address> previous(snapshot_ips[i - 1].begin(),
                                                            snapshot_ips[i - 1].end());
        std::size_t common = 0;
        for (net::IPv4Address ip : snapshot_ips[i]) {
            if (previous.contains(ip)) ++common;
        }
        std::cout << "  RIPE-" << i << " vs RIPE-" << i + 1 << ": "
                  << util::format_percent(static_cast<double>(common) /
                                          static_cast<double>(snapshot_ips[i].size()))
                  << "\n";
    }

    // RIPE vs ITDK overlap (paper: at most 26% of ITDK IPs seen in RIPE).
    const std::unordered_set<net::IPv4Address> itdk_set(itdk_ips.begin(), itdk_ips.end());
    std::size_t max_overlap = 0;
    for (const auto& ips : snapshot_ips) {
        std::size_t common = 0;
        for (net::IPv4Address ip : ips) {
            if (itdk_set.contains(ip)) ++common;
        }
        max_overlap = std::max(max_overlap, common);
    }
    std::cout << "\nMax ITDK∩RIPE overlap: "
              << util::format_percent(static_cast<double>(max_overlap) /
                                      static_cast<double>(itdk_ips.size()))
              << " of ITDK IPs (paper: ≤26%; complementary datasets)\n";
    return 0;
}
