// Table 6 — Evasion case study (§8): two unique sample signatures, Juniper
// and Cisco, differing in the ICMP iTTL position. Reconfiguring a Juniper
// router's ICMP iTTL from 64 to 255 makes LFP misclassify it as Cisco.
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "probe/sim_transport.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    // Find one JunOS MX router (the paper's Juniper flagship signature) that
    // answers everything.
    auto& topology = world->topology();
    std::size_t juniper_index = sim::Topology::npos;
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        const auto& router = topology.router(i);
        if (router.profile().family == "JunOS MX" && router.responds_icmp() &&
            router.responds_tcp() && router.responds_udp()) {
            juniper_index = i;
            break;
        }
    }
    if (juniper_index == sim::Topology::npos) {
        std::cerr << "no fully responsive JunOS MX router in this world\n";
        return 1;
    }

    probe::SimTransport transport(world->internet());
    core::LfpPipeline pipeline(transport);
    const core::LfpClassifier classifier(world->database());

    auto probe_and_classify = [&](net::IPv4Address target) {
        auto measurement = pipeline.measure("evasion", {&target, 1});
        auto& record = measurement.records[0];
        record.lfp = classifier.classify(record.signature);
        return record;
    };

    const net::IPv4Address target = topology.router(juniper_index).interfaces()[0];
    const auto before = probe_and_classify(target);

    util::TablePrinter table("Table 6 — Signature before/after iTTL reconfiguration");
    table.header({"Configuration", "Signature (Table 1 field order)", "LFP verdict"});
    table.row({"Juniper default (ICMP iTTL 64)", before.signature.key(),
               before.lfp.vendor ? std::string(stack::to_string(*before.lfp.vendor))
                                 : std::string("unclassified")});

    // Operator changes the default ICMP TTL — the §8 evasion.
    stack::RouterOverrides overrides;
    overrides.ittl_icmp = 255;
    topology.router(juniper_index).set_overrides(overrides);
    const auto after = probe_and_classify(target);
    table.row({"Juniper with ICMP iTTL 255", after.signature.key(),
               after.lfp.vendor ? std::string(stack::to_string(*after.lfp.vendor))
                                : std::string("unclassified")});
    table.print(std::cout);

    const bool flipped = before.lfp.vendor == stack::Vendor::juniper &&
                         after.lfp.vendor == stack::Vendor::cisco;
    std::cout << "\nGround truth: Juniper (JunOS MX). Misclassified as Cisco after the\n"
                 "one-knob change: "
              << (flipped ? "YES" : "NO") << " (paper: yes — Table 6)\n";
    return flipped ? 0 : 1;
}
