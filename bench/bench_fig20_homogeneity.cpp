// Figure 20 (Appendix A) — Vendor homogeneity per AS: ECDF of the number of
// distinct vendors identified per AS, for increasing AS-size thresholds.
#include "analysis/as_analysis.hpp"
#include "bench_common.hpp"

int main() {
    using namespace lfp;
    auto world = bench::make_world();

    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map =
        analysis::VendorMap::from_measurement(itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto coverage = analysis::per_as_coverage(
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map));

    const auto all_ases = analysis::homogeneity_ecdf(coverage, 1);
    const auto min5 = analysis::homogeneity_ecdf(coverage, 5);
    const auto min20 = analysis::homogeneity_ecdf(coverage, 20);
    const auto min100 = analysis::homogeneity_ecdf(coverage, 100);

    util::print_ecdf_set(std::cout, "Figure 20 — Vendors per AS",
                         {{"All", &all_ases},
                          {"Min5", &min5},
                          {"Min20", &min20},
                          {"Min100", &min100}},
                         8, "vendors");

    auto exactly_one = [](const util::Ecdf& e) { return e.at(1.0); };
    auto at_most_two = [](const util::Ecdf& e) { return e.at(2.0); };
    std::cout << "\n  ASes with >=5 routers: single-vendor "
              << util::format_percent(exactly_one(min5)) << ", <=2 vendors "
              << util::format_percent(at_most_two(min5)) << " (paper: ~50% / ~75%)\n"
              << "  ASes with >=20 routers: single-vendor "
              << util::format_percent(exactly_one(min20)) << " (paper: ~50%)\n"
              << "  Largest ASes: single-vendor " << util::format_percent(exactly_one(min100))
              << " (paper: large networks are rarely homogeneous)\n";
    return 0;
}
